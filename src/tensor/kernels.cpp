#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace photon::kernels {

namespace {

// k-dimension block for matmul: kKBlock rows of b (kKBlock * n floats) stay
// hot in cache while every row of the shard streams over them.
constexpr int kKBlock = 64;

// Per-kernel FLOPs counters (set_kernel_metrics).  Null handles no-op, so
// the un-wired cost is one branch per kernel call.
struct {
  obs::CounterHandle matmul;
  obs::CounterHandle linear_fwd;
  obs::CounterHandle linear_bwd;
} g_flops;

}  // namespace

void set_kernel_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    g_flops = {};
    return;
  }
  g_flops.matmul = registry->counter("kernels.flops.matmul");
  g_flops.linear_fwd = registry->counter("kernels.flops.linear_fwd");
  g_flops.linear_bwd = registry->counter("kernels.flops.linear_bwd");
}

void matmul(const KernelContext& ctx, float* out, const float* a,
            const float* b, int m, int k, int n) {
  g_flops.matmul.add(2ull * static_cast<std::uint64_t>(m) *
                     static_cast<std::uint64_t>(k) *
                     static_cast<std::uint64_t>(n));
  const std::size_t row_cost =
      static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
  ctx.parallel_shards(
      static_cast<std::size_t>(m), ctx.grain_rows(row_cost),
      [&](int, std::size_t i0, std::size_t i1) {
        std::memset(out + i0 * n, 0, sizeof(float) * (i1 - i0) * n);
        for (int p0 = 0; p0 < k; p0 += kKBlock) {
          const int p1 = std::min(k, p0 + kKBlock);
          for (std::size_t i = i0; i < i1; ++i) {
            const float* arow = a + i * k;
            float* orow = out + i * n;
            // ikj loop order: streams through b and out rows, vectorizes
            // well.  No zero-skip branch: it defeats vectorization on dense
            // inputs and silently changes the FLOPs MFU accounting assumes.
            for (int p = p0; p < p1; ++p) {
              const float av = arow[p];
              const float* brow = b + static_cast<std::size_t>(p) * n;
              for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
            }
          }
        }
      });
}

void linear_forward(const KernelContext& ctx, float* out, const float* inp,
                    const float* weight, const float* bias, int bt, int c,
                    int oc) {
  g_flops.linear_fwd.add(2ull * static_cast<std::uint64_t>(bt) *
                         static_cast<std::uint64_t>(c) *
                         static_cast<std::uint64_t>(oc));
  const std::size_t row_cost =
      static_cast<std::size_t>(c) * static_cast<std::size_t>(oc);
  ctx.parallel_shards(
      static_cast<std::size_t>(bt), ctx.grain_rows(row_cost),
      [&](int, std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float* x = inp + i * c;
          float* y = out + i * oc;
          for (int o = 0; o < oc; ++o) {
            const float* w = weight + static_cast<std::size_t>(o) * c;
            float acc = bias != nullptr ? bias[o] : 0.0f;
            for (int p = 0; p < c; ++p) acc += x[p] * w[p];
            y[o] = acc;
          }
        }
      });
}

void linear_backward(const KernelContext& ctx, float* dinp, float* dweight,
                     float* dbias, const float* dout, const float* inp,
                     const float* weight, int bt, int c, int oc) {
  if (g_flops.linear_bwd) {
    const std::uint64_t mm = 2ull * static_cast<std::uint64_t>(bt) *
                             static_cast<std::uint64_t>(c) *
                             static_cast<std::uint64_t>(oc);
    std::uint64_t flops = 0;
    if (dinp != nullptr) flops += mm;
    if (dweight != nullptr) flops += mm;
    if (dbias != nullptr) {
      flops += static_cast<std::uint64_t>(bt) * static_cast<std::uint64_t>(oc);
    }
    g_flops.linear_bwd.add(flops);
  }
  const std::size_t row_cost =
      static_cast<std::size_t>(c) * static_cast<std::size_t>(oc);
  if (dinp != nullptr) {
    // dinp = dout @ W  (dout: (BT,OC), W: (OC,C)).  Each row of dinp is
    // owned by exactly one shard: race-free and bit-exact.
    ctx.parallel_shards(
        static_cast<std::size_t>(bt), ctx.grain_rows(row_cost),
        [&](int, std::size_t i0, std::size_t i1) {
          for (std::size_t i = i0; i < i1; ++i) {
            const float* dy = dout + i * oc;
            float* dx = dinp + i * c;
            for (int o = 0; o < oc; ++o) {
              const float g = dy[o];
              const float* w = weight + static_cast<std::size_t>(o) * c;
              for (int p = 0; p < c; ++p) dx[p] += g * w[p];
            }
          }
        });
  }
  if (dweight != nullptr || dbias != nullptr) {
    // dW = dout^T @ inp and db = colsum(dout) reduce over BT rows, so shards
    // accumulate into per-shard partials (shard 0 goes straight into the
    // output) that are folded in shard order afterwards — deterministic at a
    // fixed thread count.
    const std::size_t wsz =
        dweight != nullptr
            ? static_cast<std::size_t>(oc) * static_cast<std::size_t>(c)
            : 0;
    const std::size_t bsz = dbias != nullptr ? static_cast<std::size_t>(oc) : 0;
    const std::size_t mg = ctx.grain_rows(row_cost);
    const int shards = ctx.shard_count(static_cast<std::size_t>(bt), mg);
    std::vector<float> scratch(
        static_cast<std::size_t>(std::max(0, shards - 1)) * (wsz + bsz), 0.0f);
    ctx.parallel_shards(
        static_cast<std::size_t>(bt), mg,
        [&](int s, std::size_t i0, std::size_t i1) {
          float* dw =
              s == 0 ? dweight
                     : scratch.data() +
                           static_cast<std::size_t>(s - 1) * (wsz + bsz);
          float* db = s == 0 ? dbias
                             : scratch.data() +
                                   static_cast<std::size_t>(s - 1) *
                                       (wsz + bsz) +
                                   wsz;
          for (std::size_t i = i0; i < i1; ++i) {
            const float* dy = dout + i * oc;
            const float* x = inp + i * c;
            if (dweight != nullptr) {
              for (int o = 0; o < oc; ++o) {
                const float g = dy[o];
                float* dwrow = dw + static_cast<std::size_t>(o) * c;
                for (int p = 0; p < c; ++p) dwrow[p] += g * x[p];
              }
            }
            if (dbias != nullptr) {
              for (int o = 0; o < oc; ++o) db[o] += dy[o];
            }
          }
        });
    // Fold partials elementwise; every element sums its shards in shard
    // order no matter which thread folds it, so the result is unchanged.
    if (dweight != nullptr && shards > 1) {
      ctx.parallel_shards(
          wsz, ctx.grain_rows(static_cast<std::size_t>(shards)),
          [&](int, std::size_t e0, std::size_t e1) {
            for (int s = 1; s < shards; ++s) {
              const float* part =
                  scratch.data() + static_cast<std::size_t>(s - 1) * (wsz + bsz);
              for (std::size_t e = e0; e < e1; ++e) dweight[e] += part[e];
            }
          });
    }
    if (dbias != nullptr && shards > 1) {
      for (int s = 1; s < shards; ++s) {
        const float* part = scratch.data() +
                            static_cast<std::size_t>(s - 1) * (wsz + bsz) + wsz;
        for (std::size_t e = 0; e < bsz; ++e) dbias[e] += part[e];
      }
    }
  }
}

void layernorm_forward(const KernelContext& ctx, float* out, float* mean,
                       float* rstd, const float* inp, const float* gamma,
                       const float* beta, int bt, int c) {
  constexpr float kEps = 1e-5f;
  ctx.parallel_shards(
      static_cast<std::size_t>(bt),
      ctx.grain_rows(4 * static_cast<std::size_t>(c)),
      [&](int, std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float* x = inp + i * c;
          float* y = out + i * c;
          double m = 0.0;
          for (int p = 0; p < c; ++p) m += x[p];
          m /= c;
          double v = 0.0;
          for (int p = 0; p < c; ++p) {
            const double d = x[p] - m;
            v += d * d;
          }
          v /= c;
          const float mf = static_cast<float>(m);
          const float rs = static_cast<float>(1.0 / std::sqrt(v + kEps));
          for (int p = 0; p < c; ++p) {
            y[p] = (x[p] - mf) * rs * gamma[p] + beta[p];
          }
          mean[i] = mf;
          rstd[i] = rs;
        }
      });
}

void layernorm_backward(const KernelContext& ctx, float* dinp, float* dgamma,
                        float* dbeta, const float* dout, const float* inp,
                        const float* gamma, const float* mean,
                        const float* rstd, int bt, int c) {
  // dinp rows are shard-owned (bit-exact); dgamma/dbeta reduce over rows via
  // per-shard partials folded in shard order.
  const std::size_t mg = ctx.grain_rows(6 * static_cast<std::size_t>(c));
  const int shards = ctx.shard_count(static_cast<std::size_t>(bt), mg);
  const std::size_t csz = static_cast<std::size_t>(c);
  std::vector<float> scratch(
      static_cast<std::size_t>(std::max(0, shards - 1)) * 2 * csz, 0.0f);
  ctx.parallel_shards(
      static_cast<std::size_t>(bt), mg,
      [&](int s, std::size_t i0, std::size_t i1) {
        float* dg = s == 0 ? dgamma
                           : scratch.data() +
                                 static_cast<std::size_t>(s - 1) * 2 * csz;
        float* db = s == 0 ? dbeta
                           : scratch.data() +
                                 static_cast<std::size_t>(s - 1) * 2 * csz +
                                 csz;
        for (std::size_t i = i0; i < i1; ++i) {
          const float* x = inp + i * c;
          const float* dy = dout + i * c;
          float* dx = dinp + i * c;
          const float m = mean[i];
          const float rs = rstd[i];

          // Two reductions shared by every element of the row.
          double dnorm_mean = 0.0;
          double dnorm_norm_mean = 0.0;
          for (int p = 0; p < c; ++p) {
            const float norm = (x[p] - m) * rs;
            const float dnorm = gamma[p] * dy[p];
            dnorm_mean += dnorm;
            dnorm_norm_mean += dnorm * norm;
          }
          dnorm_mean /= c;
          dnorm_norm_mean /= c;

          for (int p = 0; p < c; ++p) {
            const float norm = (x[p] - m) * rs;
            const float dnorm = gamma[p] * dy[p];
            dg[p] += dy[p] * norm;
            db[p] += dy[p];
            dx[p] += (dnorm - static_cast<float>(dnorm_mean) -
                      norm * static_cast<float>(dnorm_norm_mean)) *
                     rs;
          }
        }
      });
  for (int s = 1; s < shards; ++s) {
    const float* part =
        scratch.data() + static_cast<std::size_t>(s - 1) * 2 * csz;
    for (std::size_t p = 0; p < csz; ++p) dgamma[p] += part[p];
    for (std::size_t p = 0; p < csz; ++p) dbeta[p] += part[csz + p];
  }
}

void gelu_forward(const KernelContext& ctx, float* out, const float* inp,
                  std::size_t n) {
  constexpr float kInvSqrt2 = 0.70710678118654752440f;
  ctx.parallel_shards(n, ctx.grain(),
                      [&](int, std::size_t i0, std::size_t i1) {
                        for (std::size_t i = i0; i < i1; ++i) {
                          const float x = inp[i];
                          out[i] = 0.5f * x * (1.0f + std::erf(x * kInvSqrt2));
                        }
                      });
}

void gelu_backward(const KernelContext& ctx, float* dinp, const float* inp,
                   const float* dout, std::size_t n) {
  constexpr float kInvSqrt2 = 0.70710678118654752440f;
  constexpr float kInvSqrt2Pi = 0.39894228040143267794f;
  ctx.parallel_shards(
      n, ctx.grain(), [&](int, std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float x = inp[i];
          const float cdf = 0.5f * (1.0f + std::erf(x * kInvSqrt2));
          const float pdf = kInvSqrt2Pi * std::exp(-0.5f * x * x);
          dinp[i] += dout[i] * (cdf + x * pdf);
        }
      });
}

void residual_forward(const KernelContext& ctx, float* out, const float* a,
                      const float* b, std::size_t n) {
  ctx.parallel_shards(n, ctx.grain(),
                      [&](int, std::size_t i0, std::size_t i1) {
                        for (std::size_t i = i0; i < i1; ++i)
                          out[i] = a[i] + b[i];
                      });
}

void residual_backward(const KernelContext& ctx, float* da, float* db,
                       const float* dout, std::size_t n) {
  ctx.parallel_shards(n, ctx.grain(),
                      [&](int, std::size_t i0, std::size_t i1) {
                        for (std::size_t i = i0; i < i1; ++i) {
                          da[i] += dout[i];
                          db[i] += dout[i];
                        }
                      });
}

void alibi_slopes(float* slopes, int nh) {
  for (int h = 0; h < nh; ++h) {
    slopes[h] = std::exp2(-8.0f * static_cast<float>(h + 1) / static_cast<float>(nh));
  }
}

void attention_forward(const KernelContext& ctx, float* out, float* preatt,
                       float* att, const float* qkv, const float* slopes,
                       int b, int t, int c, int nh) {
  const int hs = c / nh;  // head size
  const float scale = 1.0f / std::sqrt(static_cast<float>(hs));
  const std::size_t tt = static_cast<std::size_t>(t) * t;
  const std::size_t pairs = static_cast<std::size_t>(b) * nh;
  const std::size_t pair_cost = tt * static_cast<std::size_t>(hs);

  // (batch, head) pairs are fully independent: each owns disjoint slices of
  // preatt/att/out, so sharding over them is race-free and bit-exact.
  ctx.parallel_shards(pairs, ctx.grain_rows(pair_cost), [&](int, std::size_t b0,
                                                            std::size_t b1) {
    for (std::size_t bh = b0; bh < b1; ++bh) {
      const int bi = static_cast<int>(bh) / nh;
      const int h = static_cast<int>(bh) % nh;
      const float slope = slopes[h];
      float* pre_h = preatt + (static_cast<std::size_t>(bi) * nh + h) * tt;
      float* att_h = att + (static_cast<std::size_t>(bi) * nh + h) * tt;
      for (int ti = 0; ti < t; ++ti) {
        const float* q = qkv + (static_cast<std::size_t>(bi) * t + ti) * 3 * c +
                         static_cast<std::size_t>(h) * hs;
        float* pre_row = pre_h + static_cast<std::size_t>(ti) * t;
        float* att_row = att_h + static_cast<std::size_t>(ti) * t;

        // Logits with ALiBi bias -slope*(ti - t2), causal mask beyond ti.
        float maxv = -std::numeric_limits<float>::infinity();
        for (int t2 = 0; t2 <= ti; ++t2) {
          const float* k = qkv + (static_cast<std::size_t>(bi) * t + t2) * 3 * c +
                           c + static_cast<std::size_t>(h) * hs;
          float dotv = 0.0f;
          for (int p = 0; p < hs; ++p) dotv += q[p] * k[p];
          dotv = dotv * scale - slope * static_cast<float>(ti - t2);
          pre_row[t2] = dotv;
          maxv = std::max(maxv, dotv);
        }
        // Softmax over the causal prefix.
        float sum = 0.0f;
        for (int t2 = 0; t2 <= ti; ++t2) {
          const float e = std::exp(pre_row[t2] - maxv);
          att_row[t2] = e;
          sum += e;
        }
        const float inv = sum > 0.0f ? 1.0f / sum : 0.0f;
        for (int t2 = 0; t2 <= ti; ++t2) att_row[t2] *= inv;
        for (int t2 = ti + 1; t2 < t; ++t2) {
          pre_row[t2] = 0.0f;
          att_row[t2] = 0.0f;
        }

        // Weighted sum of values.
        float* o = out + (static_cast<std::size_t>(bi) * t + ti) * c +
                   static_cast<std::size_t>(h) * hs;
        for (int p = 0; p < hs; ++p) o[p] = 0.0f;
        for (int t2 = 0; t2 <= ti; ++t2) {
          const float* v = qkv + (static_cast<std::size_t>(bi) * t + t2) * 3 * c +
                           2 * c + static_cast<std::size_t>(h) * hs;
          const float a = att_row[t2];
          for (int p = 0; p < hs; ++p) o[p] += a * v[p];
        }
      }
    }
  });
}

void attention_backward(const KernelContext& ctx, float* dqkv, float* dpreatt,
                        float* datt, const float* dout, const float* qkv,
                        const float* att, int b, int t, int c, int nh) {
  const int hs = c / nh;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hs));
  const std::size_t tt = static_cast<std::size_t>(t) * t;
  const std::size_t pairs = static_cast<std::size_t>(b) * nh;
  const std::size_t pair_cost = 2 * tt * static_cast<std::size_t>(hs);

  // Like the forward: a (batch, head) pair only ever touches the head-h
  // slice of its own batch's dqkv rows, so pairs never alias.
  ctx.parallel_shards(pairs, ctx.grain_rows(pair_cost), [&](int, std::size_t b0,
                                                            std::size_t b1) {
    for (std::size_t bh = b0; bh < b1; ++bh) {
      const int bi = static_cast<int>(bh) / nh;
      const int h = static_cast<int>(bh) % nh;
      const float* att_h = att + (static_cast<std::size_t>(bi) * nh + h) * tt;
      float* datt_h = datt + (static_cast<std::size_t>(bi) * nh + h) * tt;
      float* dpre_h = dpreatt + (static_cast<std::size_t>(bi) * nh + h) * tt;
      for (int ti = 0; ti < t; ++ti) {
        const float* att_row = att_h + static_cast<std::size_t>(ti) * t;
        float* datt_row = datt_h + static_cast<std::size_t>(ti) * t;
        float* dpre_row = dpre_h + static_cast<std::size_t>(ti) * t;
        const float* q = qkv + (static_cast<std::size_t>(bi) * t + ti) * 3 * c +
                         static_cast<std::size_t>(h) * hs;
        float* dq = dqkv + (static_cast<std::size_t>(bi) * t + ti) * 3 * c +
                    static_cast<std::size_t>(h) * hs;
        const float* doh = dout + (static_cast<std::size_t>(bi) * t + ti) * c +
                           static_cast<std::size_t>(h) * hs;

        // Backward through out = att @ V.
        for (int t2 = 0; t2 <= ti; ++t2) {
          const float* v = qkv + (static_cast<std::size_t>(bi) * t + t2) * 3 * c +
                           2 * c + static_cast<std::size_t>(h) * hs;
          float* dv = dqkv + (static_cast<std::size_t>(bi) * t + t2) * 3 * c +
                      2 * c + static_cast<std::size_t>(h) * hs;
          float acc = 0.0f;
          const float a = att_row[t2];
          for (int p = 0; p < hs; ++p) {
            acc += v[p] * doh[p];
            dv[p] += a * doh[p];
          }
          datt_row[t2] += acc;
        }

        // Backward through softmax: dpre = att * (datt - sum(att*datt)).
        float dot = 0.0f;
        for (int t2 = 0; t2 <= ti; ++t2) dot += att_row[t2] * datt_row[t2];
        for (int t2 = 0; t2 <= ti; ++t2) {
          dpre_row[t2] += att_row[t2] * (datt_row[t2] - dot);
        }

        // Backward through q.k^T * scale (ALiBi bias is constant: no grad).
        for (int t2 = 0; t2 <= ti; ++t2) {
          const float* k = qkv + (static_cast<std::size_t>(bi) * t + t2) * 3 * c +
                           c + static_cast<std::size_t>(h) * hs;
          float* dk = dqkv + (static_cast<std::size_t>(bi) * t + t2) * 3 * c +
                      c + static_cast<std::size_t>(h) * hs;
          const float g = dpre_row[t2] * scale;
          for (int p = 0; p < hs; ++p) {
            dq[p] += g * k[p];
            dk[p] += g * q[p];
          }
        }
      }
    }
  });
}

void embedding_forward(const KernelContext& ctx, float* out, const int* tokens,
                       const float* table, int bt, int c) {
  ctx.parallel_shards(
      static_cast<std::size_t>(bt), ctx.grain_rows(static_cast<std::size_t>(c)),
      [&](int, std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float* row = table + static_cast<std::size_t>(tokens[i]) * c;
          std::memcpy(out + i * c, row,
                      sizeof(float) * static_cast<std::size_t>(c));
        }
      });
}

void embedding_backward(float* dtable, const int* tokens, const float* dout,
                        int bt, int c) {
  // Scatter-add: different rows can hit the same token id, so this stays
  // serial (it is a tiny fraction of the step anyway).
  for (int i = 0; i < bt; ++i) {
    float* drow = dtable + static_cast<std::size_t>(tokens[i]) * c;
    const float* dy = dout + static_cast<std::size_t>(i) * c;
    for (int p = 0; p < c; ++p) drow[p] += dy[p];
  }
}

void softmax_xent_forward(const KernelContext& ctx, float* losses,
                          float* probs, const float* logits,
                          const int* targets, int bt, int v) {
  ctx.parallel_shards(
      static_cast<std::size_t>(bt),
      ctx.grain_rows(3 * static_cast<std::size_t>(v)),
      [&](int, std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float* z = logits + i * v;
          float* p = probs + i * v;
          float maxv = -std::numeric_limits<float>::infinity();
          for (int j = 0; j < v; ++j) maxv = std::max(maxv, z[j]);
          double sum = 0.0;
          for (int j = 0; j < v; ++j) {
            const float e = std::exp(z[j] - maxv);
            p[j] = e;
            sum += e;
          }
          const float inv = static_cast<float>(1.0 / sum);
          for (int j = 0; j < v; ++j) p[j] *= inv;
          const int target = targets[i];
          if (target < 0) {
            losses[i] = 0.0f;
          } else {
            losses[i] = -std::log(std::max(p[target], 1e-12f));
          }
        }
      });
}

void softmax_xent_backward(const KernelContext& ctx, float* dlogits,
                           const float* probs, const int* targets, int bt,
                           int v, float scale) {
  ctx.parallel_shards(
      static_cast<std::size_t>(bt), ctx.grain_rows(static_cast<std::size_t>(v)),
      [&](int, std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const int target = targets[i];
          if (target < 0) continue;
          const float* p = probs + i * v;
          float* dz = dlogits + i * v;
          for (int j = 0; j < v; ++j) {
            dz[j] += (p[j] - (j == target ? 1.0f : 0.0f)) * scale;
          }
        }
      });
}

void scale_inplace(const KernelContext& ctx, float* x, float s,
                   std::size_t n) {
  ctx.parallel_shards(n, ctx.grain(),
                      [&](int, std::size_t i0, std::size_t i1) {
                        for (std::size_t i = i0; i < i1; ++i) x[i] *= s;
                      });
}

void axpy(const KernelContext& ctx, float* y, float a, const float* x,
          std::size_t n) {
  ctx.parallel_shards(n, ctx.grain(),
                      [&](int, std::size_t i0, std::size_t i1) {
                        for (std::size_t i = i0; i < i1; ++i) y[i] += a * x[i];
                      });
}

double l2_norm(const KernelContext& ctx, const float* x, std::size_t n) {
  const int shards = ctx.shard_count(n, ctx.grain());
  std::vector<double> partials(static_cast<std::size_t>(shards), 0.0);
  ctx.parallel_shards(n, ctx.grain(),
                      [&](int s, std::size_t i0, std::size_t i1) {
                        double acc = 0.0;
                        for (std::size_t i = i0; i < i1; ++i) {
                          acc += static_cast<double>(x[i]) * x[i];
                        }
                        partials[static_cast<std::size_t>(s)] = acc;
                      });
  double total = 0.0;
  for (const double p : partials) total += p;
  return std::sqrt(total);
}

// ------------------------------------------------------------------------
// Legacy signatures: route through the env-configured default context.

void matmul(float* out, const float* a, const float* b, int m, int k, int n) {
  matmul(default_context(), out, a, b, m, k, n);
}

void linear_forward(float* out, const float* inp, const float* weight,
                    const float* bias, int bt, int c, int oc) {
  linear_forward(default_context(), out, inp, weight, bias, bt, c, oc);
}

void linear_backward(float* dinp, float* dweight, float* dbias,
                     const float* dout, const float* inp, const float* weight,
                     int bt, int c, int oc) {
  linear_backward(default_context(), dinp, dweight, dbias, dout, inp, weight,
                  bt, c, oc);
}

void layernorm_forward(float* out, float* mean, float* rstd, const float* inp,
                       const float* gamma, const float* beta, int bt, int c) {
  layernorm_forward(default_context(), out, mean, rstd, inp, gamma, beta, bt,
                    c);
}

void layernorm_backward(float* dinp, float* dgamma, float* dbeta,
                        const float* dout, const float* inp, const float* gamma,
                        const float* mean, const float* rstd, int bt, int c) {
  layernorm_backward(default_context(), dinp, dgamma, dbeta, dout, inp, gamma,
                     mean, rstd, bt, c);
}

void gelu_forward(float* out, const float* inp, std::size_t n) {
  gelu_forward(default_context(), out, inp, n);
}

void gelu_backward(float* dinp, const float* inp, const float* dout,
                   std::size_t n) {
  gelu_backward(default_context(), dinp, inp, dout, n);
}

void residual_forward(float* out, const float* a, const float* b,
                      std::size_t n) {
  residual_forward(default_context(), out, a, b, n);
}

void residual_backward(float* da, float* db, const float* dout,
                       std::size_t n) {
  residual_backward(default_context(), da, db, dout, n);
}

void attention_forward(float* out, float* preatt, float* att, const float* qkv,
                       const float* slopes, int b, int t, int c, int nh) {
  attention_forward(default_context(), out, preatt, att, qkv, slopes, b, t, c,
                    nh);
}

void attention_backward(float* dqkv, float* dpreatt, float* datt,
                        const float* dout, const float* qkv, const float* att,
                        int b, int t, int c, int nh) {
  attention_backward(default_context(), dqkv, dpreatt, datt, dout, qkv, att,
                     b, t, c, nh);
}

void embedding_forward(float* out, const int* tokens, const float* table,
                       int bt, int c) {
  embedding_forward(default_context(), out, tokens, table, bt, c);
}

void softmax_xent_forward(float* losses, float* probs, const float* logits,
                          const int* targets, int bt, int v) {
  softmax_xent_forward(default_context(), losses, probs, logits, targets, bt,
                       v);
}

void softmax_xent_backward(float* dlogits, const float* probs,
                           const int* targets, int bt, int v, float scale) {
  softmax_xent_backward(default_context(), dlogits, probs, targets, bt, v,
                        scale);
}

void scale_inplace(float* x, float s, std::size_t n) {
  scale_inplace(default_context(), x, s, n);
}

void axpy(float* y, float a, const float* x, std::size_t n) {
  axpy(default_context(), y, a, x, n);
}

double l2_norm(const float* x, std::size_t n) {
  return l2_norm(default_context(), x, n);
}

}  // namespace photon::kernels
