#include "tensor/kernels.hpp"

#include <cmath>
#include <cstring>
#include <limits>

namespace photon::kernels {

void matmul(float* out, const float* a, const float* b, int m, int k, int n) {
  // ikj loop order: streams through b and out rows, vectorizes well.
  std::memset(out, 0, sizeof(float) * static_cast<std::size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* orow = out + static_cast<std::size_t>(i) * n;
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void linear_forward(float* out, const float* inp, const float* weight,
                    const float* bias, int bt, int c, int oc) {
  for (int i = 0; i < bt; ++i) {
    const float* x = inp + static_cast<std::size_t>(i) * c;
    float* y = out + static_cast<std::size_t>(i) * oc;
    for (int o = 0; o < oc; ++o) {
      const float* w = weight + static_cast<std::size_t>(o) * c;
      float acc = bias != nullptr ? bias[o] : 0.0f;
      for (int p = 0; p < c; ++p) acc += x[p] * w[p];
      y[o] = acc;
    }
  }
}

void linear_backward(float* dinp, float* dweight, float* dbias,
                     const float* dout, const float* inp, const float* weight,
                     int bt, int c, int oc) {
  if (dinp != nullptr) {
    // dinp = dout @ W  (dout: (BT,OC), W: (OC,C))
    for (int i = 0; i < bt; ++i) {
      const float* dy = dout + static_cast<std::size_t>(i) * oc;
      float* dx = dinp + static_cast<std::size_t>(i) * c;
      for (int o = 0; o < oc; ++o) {
        const float g = dy[o];
        if (g == 0.0f) continue;
        const float* w = weight + static_cast<std::size_t>(o) * c;
        for (int p = 0; p < c; ++p) dx[p] += g * w[p];
      }
    }
  }
  if (dweight != nullptr) {
    // dW = dout^T @ inp
    for (int i = 0; i < bt; ++i) {
      const float* dy = dout + static_cast<std::size_t>(i) * oc;
      const float* x = inp + static_cast<std::size_t>(i) * c;
      for (int o = 0; o < oc; ++o) {
        const float g = dy[o];
        if (g == 0.0f) continue;
        float* dw = dweight + static_cast<std::size_t>(o) * c;
        for (int p = 0; p < c; ++p) dw[p] += g * x[p];
      }
    }
  }
  if (dbias != nullptr) {
    for (int i = 0; i < bt; ++i) {
      const float* dy = dout + static_cast<std::size_t>(i) * oc;
      for (int o = 0; o < oc; ++o) dbias[o] += dy[o];
    }
  }
}

void layernorm_forward(float* out, float* mean, float* rstd, const float* inp,
                       const float* gamma, const float* beta, int bt, int c) {
  constexpr float kEps = 1e-5f;
  for (int i = 0; i < bt; ++i) {
    const float* x = inp + static_cast<std::size_t>(i) * c;
    float* y = out + static_cast<std::size_t>(i) * c;
    double m = 0.0;
    for (int p = 0; p < c; ++p) m += x[p];
    m /= c;
    double v = 0.0;
    for (int p = 0; p < c; ++p) {
      const double d = x[p] - m;
      v += d * d;
    }
    v /= c;
    const float mf = static_cast<float>(m);
    const float rs = static_cast<float>(1.0 / std::sqrt(v + kEps));
    for (int p = 0; p < c; ++p) {
      y[p] = (x[p] - mf) * rs * gamma[p] + beta[p];
    }
    mean[i] = mf;
    rstd[i] = rs;
  }
}

void layernorm_backward(float* dinp, float* dgamma, float* dbeta,
                        const float* dout, const float* inp, const float* gamma,
                        const float* mean, const float* rstd, int bt, int c) {
  for (int i = 0; i < bt; ++i) {
    const float* x = inp + static_cast<std::size_t>(i) * c;
    const float* dy = dout + static_cast<std::size_t>(i) * c;
    float* dx = dinp + static_cast<std::size_t>(i) * c;
    const float m = mean[i];
    const float rs = rstd[i];

    // Two reductions shared by every element of the row.
    double dnorm_mean = 0.0;
    double dnorm_norm_mean = 0.0;
    for (int p = 0; p < c; ++p) {
      const float norm = (x[p] - m) * rs;
      const float dnorm = gamma[p] * dy[p];
      dnorm_mean += dnorm;
      dnorm_norm_mean += dnorm * norm;
    }
    dnorm_mean /= c;
    dnorm_norm_mean /= c;

    for (int p = 0; p < c; ++p) {
      const float norm = (x[p] - m) * rs;
      const float dnorm = gamma[p] * dy[p];
      dgamma[p] += dy[p] * norm;
      dbeta[p] += dy[p];
      dx[p] += (dnorm - static_cast<float>(dnorm_mean) -
                norm * static_cast<float>(dnorm_norm_mean)) *
               rs;
    }
  }
}

void gelu_forward(float* out, const float* inp, std::size_t n) {
  constexpr float kInvSqrt2 = 0.70710678118654752440f;
  for (std::size_t i = 0; i < n; ++i) {
    const float x = inp[i];
    out[i] = 0.5f * x * (1.0f + std::erf(x * kInvSqrt2));
  }
}

void gelu_backward(float* dinp, const float* inp, const float* dout,
                   std::size_t n) {
  constexpr float kInvSqrt2 = 0.70710678118654752440f;
  constexpr float kInvSqrt2Pi = 0.39894228040143267794f;
  for (std::size_t i = 0; i < n; ++i) {
    const float x = inp[i];
    const float cdf = 0.5f * (1.0f + std::erf(x * kInvSqrt2));
    const float pdf = kInvSqrt2Pi * std::exp(-0.5f * x * x);
    dinp[i] += dout[i] * (cdf + x * pdf);
  }
}

void residual_forward(float* out, const float* a, const float* b,
                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void residual_backward(float* da, float* db, const float* dout,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    da[i] += dout[i];
    db[i] += dout[i];
  }
}

void alibi_slopes(float* slopes, int nh) {
  for (int h = 0; h < nh; ++h) {
    slopes[h] = std::exp2(-8.0f * static_cast<float>(h + 1) / static_cast<float>(nh));
  }
}

void attention_forward(float* out, float* preatt, float* att, const float* qkv,
                       const float* slopes, int b, int t, int c, int nh) {
  const int hs = c / nh;  // head size
  const float scale = 1.0f / std::sqrt(static_cast<float>(hs));
  const std::size_t tt = static_cast<std::size_t>(t) * t;

  for (int bi = 0; bi < b; ++bi) {
    for (int h = 0; h < nh; ++h) {
      const float slope = slopes[h];
      float* pre_h = preatt + (static_cast<std::size_t>(bi) * nh + h) * tt;
      float* att_h = att + (static_cast<std::size_t>(bi) * nh + h) * tt;
      for (int ti = 0; ti < t; ++ti) {
        const float* q = qkv + (static_cast<std::size_t>(bi) * t + ti) * 3 * c +
                         static_cast<std::size_t>(h) * hs;
        float* pre_row = pre_h + static_cast<std::size_t>(ti) * t;
        float* att_row = att_h + static_cast<std::size_t>(ti) * t;

        // Logits with ALiBi bias -slope*(ti - t2), causal mask beyond ti.
        float maxv = -std::numeric_limits<float>::infinity();
        for (int t2 = 0; t2 <= ti; ++t2) {
          const float* k = qkv + (static_cast<std::size_t>(bi) * t + t2) * 3 * c +
                           c + static_cast<std::size_t>(h) * hs;
          float dotv = 0.0f;
          for (int p = 0; p < hs; ++p) dotv += q[p] * k[p];
          dotv = dotv * scale - slope * static_cast<float>(ti - t2);
          pre_row[t2] = dotv;
          maxv = std::max(maxv, dotv);
        }
        // Softmax over the causal prefix.
        float sum = 0.0f;
        for (int t2 = 0; t2 <= ti; ++t2) {
          const float e = std::exp(pre_row[t2] - maxv);
          att_row[t2] = e;
          sum += e;
        }
        const float inv = sum > 0.0f ? 1.0f / sum : 0.0f;
        for (int t2 = 0; t2 <= ti; ++t2) att_row[t2] *= inv;
        for (int t2 = ti + 1; t2 < t; ++t2) {
          pre_row[t2] = 0.0f;
          att_row[t2] = 0.0f;
        }

        // Weighted sum of values.
        float* o = out + (static_cast<std::size_t>(bi) * t + ti) * c +
                   static_cast<std::size_t>(h) * hs;
        for (int p = 0; p < hs; ++p) o[p] = 0.0f;
        for (int t2 = 0; t2 <= ti; ++t2) {
          const float* v = qkv + (static_cast<std::size_t>(bi) * t + t2) * 3 * c +
                           2 * c + static_cast<std::size_t>(h) * hs;
          const float a = att_row[t2];
          for (int p = 0; p < hs; ++p) o[p] += a * v[p];
        }
      }
    }
  }
}

void attention_backward(float* dqkv, float* dpreatt, float* datt,
                        const float* dout, const float* qkv, const float* att,
                        int b, int t, int c, int nh) {
  const int hs = c / nh;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hs));
  const std::size_t tt = static_cast<std::size_t>(t) * t;

  for (int bi = 0; bi < b; ++bi) {
    for (int h = 0; h < nh; ++h) {
      const float* att_h = att + (static_cast<std::size_t>(bi) * nh + h) * tt;
      float* datt_h = datt + (static_cast<std::size_t>(bi) * nh + h) * tt;
      float* dpre_h = dpreatt + (static_cast<std::size_t>(bi) * nh + h) * tt;
      for (int ti = 0; ti < t; ++ti) {
        const float* att_row = att_h + static_cast<std::size_t>(ti) * t;
        float* datt_row = datt_h + static_cast<std::size_t>(ti) * t;
        float* dpre_row = dpre_h + static_cast<std::size_t>(ti) * t;
        const float* q = qkv + (static_cast<std::size_t>(bi) * t + ti) * 3 * c +
                         static_cast<std::size_t>(h) * hs;
        float* dq = dqkv + (static_cast<std::size_t>(bi) * t + ti) * 3 * c +
                    static_cast<std::size_t>(h) * hs;
        const float* doh = dout + (static_cast<std::size_t>(bi) * t + ti) * c +
                           static_cast<std::size_t>(h) * hs;

        // Backward through out = att @ V.
        for (int t2 = 0; t2 <= ti; ++t2) {
          const float* v = qkv + (static_cast<std::size_t>(bi) * t + t2) * 3 * c +
                           2 * c + static_cast<std::size_t>(h) * hs;
          float* dv = dqkv + (static_cast<std::size_t>(bi) * t + t2) * 3 * c +
                      2 * c + static_cast<std::size_t>(h) * hs;
          float acc = 0.0f;
          const float a = att_row[t2];
          for (int p = 0; p < hs; ++p) {
            acc += v[p] * doh[p];
            dv[p] += a * doh[p];
          }
          datt_row[t2] += acc;
        }

        // Backward through softmax: dpre = att * (datt - sum(att*datt)).
        float dot = 0.0f;
        for (int t2 = 0; t2 <= ti; ++t2) dot += att_row[t2] * datt_row[t2];
        for (int t2 = 0; t2 <= ti; ++t2) {
          dpre_row[t2] += att_row[t2] * (datt_row[t2] - dot);
        }

        // Backward through q.k^T * scale (ALiBi bias is constant: no grad).
        for (int t2 = 0; t2 <= ti; ++t2) {
          const float* k = qkv + (static_cast<std::size_t>(bi) * t + t2) * 3 * c +
                           c + static_cast<std::size_t>(h) * hs;
          float* dk = dqkv + (static_cast<std::size_t>(bi) * t + t2) * 3 * c +
                      c + static_cast<std::size_t>(h) * hs;
          const float g = dpre_row[t2] * scale;
          for (int p = 0; p < hs; ++p) {
            dq[p] += g * k[p];
            dk[p] += g * q[p];
          }
        }
      }
    }
  }
}

void embedding_forward(float* out, const int* tokens, const float* table,
                       int bt, int c) {
  for (int i = 0; i < bt; ++i) {
    const float* row = table + static_cast<std::size_t>(tokens[i]) * c;
    std::memcpy(out + static_cast<std::size_t>(i) * c, row,
                sizeof(float) * static_cast<std::size_t>(c));
  }
}

void embedding_backward(float* dtable, const int* tokens, const float* dout,
                        int bt, int c) {
  for (int i = 0; i < bt; ++i) {
    float* drow = dtable + static_cast<std::size_t>(tokens[i]) * c;
    const float* dy = dout + static_cast<std::size_t>(i) * c;
    for (int p = 0; p < c; ++p) drow[p] += dy[p];
  }
}

void softmax_xent_forward(float* losses, float* probs, const float* logits,
                          const int* targets, int bt, int v) {
  for (int i = 0; i < bt; ++i) {
    const float* z = logits + static_cast<std::size_t>(i) * v;
    float* p = probs + static_cast<std::size_t>(i) * v;
    float maxv = -std::numeric_limits<float>::infinity();
    for (int j = 0; j < v; ++j) maxv = std::max(maxv, z[j]);
    double sum = 0.0;
    for (int j = 0; j < v; ++j) {
      const float e = std::exp(z[j] - maxv);
      p[j] = e;
      sum += e;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int j = 0; j < v; ++j) p[j] *= inv;
    const int target = targets[i];
    if (target < 0) {
      losses[i] = 0.0f;
    } else {
      losses[i] = -std::log(std::max(p[target], 1e-12f));
    }
  }
}

void softmax_xent_backward(float* dlogits, const float* probs,
                           const int* targets, int bt, int v, float scale) {
  for (int i = 0; i < bt; ++i) {
    const int target = targets[i];
    if (target < 0) continue;
    const float* p = probs + static_cast<std::size_t>(i) * v;
    float* dz = dlogits + static_cast<std::size_t>(i) * v;
    for (int j = 0; j < v; ++j) {
      dz[j] += (p[j] - (j == target ? 1.0f : 0.0f)) * scale;
    }
  }
}

void scale_inplace(float* x, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

void axpy(float* y, float a, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

double l2_norm(const float* x, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += static_cast<double>(x[i]) * x[i];
  return std::sqrt(s);
}

}  // namespace photon::kernels
