#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/simd.hpp"

// This translation unit compiles with -ffp-contract=off (see the top-level
// CMakeLists): the few arithmetic expressions still written inline here must
// round exactly like the SIMD layer's explicit mul+add sequences.

namespace photon::kernels {

namespace {

// k-dimension block for matmul: kKBlock rows of b (kKBlock * n floats) stay
// hot in cache while every row of the shard streams over them.
constexpr int kKBlock = 64;

// l2_norm reduces over fixed-size blocks folded in block order, so the
// summation grouping never depends on the shard layout (thread count).
// One block is one unit of shardable work (== default grain).
constexpr std::size_t kNormBlock = 32768;

// Per-kernel FLOPs counters (set_kernel_metrics).  Null handles no-op, so
// the un-wired cost is one branch per kernel call.
struct {
  obs::CounterHandle matmul;
  obs::CounterHandle linear_fwd;
  obs::CounterHandle linear_bwd;
} g_flops;

}  // namespace

void set_kernel_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    g_flops = {};
    return;
  }
  g_flops.matmul = registry->counter("kernels.flops.matmul");
  g_flops.linear_fwd = registry->counter("kernels.flops.linear_fwd");
  g_flops.linear_bwd = registry->counter("kernels.flops.linear_bwd");
  registry->gauge("kernels.simd_variant")
      .set(static_cast<double>(static_cast<int>(simd::active_variant())));
}

void matmul(const KernelContext& ctx, float* out, const float* a,
            const float* b, int m, int k, int n) {
  g_flops.matmul.add(2ull * static_cast<std::uint64_t>(m) *
                     static_cast<std::uint64_t>(k) *
                     static_cast<std::uint64_t>(n));
  const simd::Ops& ops = ctx.simd();
  const std::size_t row_cost =
      static_cast<std::size_t>(k) * static_cast<std::size_t>(n);
  ctx.parallel_shards(
      static_cast<std::size_t>(m), ctx.grain_rows(row_cost),
      [&](int, std::size_t i0, std::size_t i1) {
        std::memset(out + i0 * n, 0, sizeof(float) * (i1 - i0) * n);
        for (int p0 = 0; p0 < k; p0 += kKBlock) {
          const int p1 = std::min(k, p0 + kKBlock);
          for (std::size_t i = i0; i < i1; ++i) {
            const float* arow = a + i * k;
            float* orow = out + i * n;
            // ikj loop order: each p streams one row of b into orow via
            // axpy.  No zero-skip branch: it silently changes the FLOPs
            // MFU accounting assumes.
            for (int p = p0; p < p1; ++p) {
              ops.axpy(orow, b + static_cast<std::size_t>(p) * n,
                       static_cast<std::size_t>(n), arow[p]);
            }
          }
        }
      });
}

void linear_forward(const KernelContext& ctx, float* out, const float* inp,
                    const float* weight, const float* bias, int bt, int c,
                    int oc) {
  g_flops.linear_fwd.add(2ull * static_cast<std::uint64_t>(bt) *
                         static_cast<std::uint64_t>(c) *
                         static_cast<std::uint64_t>(oc));
  const simd::Ops& ops = ctx.simd();
  const std::size_t cs = static_cast<std::size_t>(c);
  const std::size_t ocs = static_cast<std::size_t>(oc);
  ctx.parallel_shards(static_cast<std::size_t>(bt), ctx.grain_rows(cs * ocs),
                      [&](int, std::size_t i0, std::size_t i1) {
                        for (std::size_t i = i0; i < i1; ++i) {
                          ops.linear_row(out + i * ocs, inp + i * cs, weight,
                                         bias, cs, ocs);
                        }
                      });
}

void linear_backward(const KernelContext& ctx, float* dinp, float* dweight,
                     float* dbias, const float* dout, const float* inp,
                     const float* weight, int bt, int c, int oc) {
  if (g_flops.linear_bwd) {
    const std::uint64_t mm = 2ull * static_cast<std::uint64_t>(bt) *
                             static_cast<std::uint64_t>(c) *
                             static_cast<std::uint64_t>(oc);
    std::uint64_t flops = 0;
    if (dinp != nullptr) flops += mm;
    if (dweight != nullptr) flops += mm;
    if (dbias != nullptr) {
      flops += static_cast<std::uint64_t>(bt) * static_cast<std::uint64_t>(oc);
    }
    g_flops.linear_bwd.add(flops);
  }
  const simd::Ops& ops = ctx.simd();
  const std::size_t cs = static_cast<std::size_t>(c);
  const std::size_t ocs = static_cast<std::size_t>(oc);
  const std::size_t bts = static_cast<std::size_t>(bt);
  if (dinp != nullptr) {
    // dinp = dout @ W  (dout: (BT,OC), W: (OC,C)).  Each row of dinp is
    // owned by exactly one shard: race-free and bit-exact.
    ctx.parallel_shards(bts, ctx.grain_rows(cs * ocs),
                        [&](int, std::size_t i0, std::size_t i1) {
                          for (std::size_t i = i0; i < i1; ++i) {
                            ops.linear_bwd_dx_row(dinp + i * cs,
                                                  dout + i * ocs, weight, cs,
                                                  ocs);
                          }
                        });
  }
  if (dweight != nullptr) {
    // dW = dout^T @ inp and db = colsum(dout) reduce over BT rows; sharding
    // over output channels gives every element a fixed row-ascending
    // accumulation order — bit-exact at any thread count, no scratch.
    ctx.parallel_shards(ocs, ctx.grain_rows(2 * bts * cs),
                        [&](int, std::size_t o0, std::size_t o1) {
                          ops.linear_bwd_wb(dweight, dbias, inp, dout, bts, cs,
                                            ocs, o0, o1);
                        });
  } else if (dbias != nullptr) {
    // Bias-only backward (no weight grad): plain column sums of dout.
    ctx.parallel_shards(ocs, ctx.grain_rows(bts),
                        [&](int, std::size_t o0, std::size_t o1) {
                          for (std::size_t o = o0; o < o1; ++o) {
                            float acc = dbias[o];
                            for (std::size_t i = 0; i < bts; ++i) {
                              acc += dout[i * ocs + o];
                            }
                            dbias[o] = acc;
                          }
                        });
  }
}

void layernorm_forward(const KernelContext& ctx, float* out, float* mean,
                       float* rstd, const float* inp, const float* gamma,
                       const float* beta, int bt, int c) {
  constexpr float kEps = 1e-5f;
  const simd::Ops& ops = ctx.simd();
  const std::size_t cs = static_cast<std::size_t>(c);
  ctx.parallel_shards(
      static_cast<std::size_t>(bt), ctx.grain_rows(4 * cs),
      [&](int, std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float* x = inp + i * cs;
          const double m = ops.sum_pd(x, cs) / c;
          const double v = ops.sumsq_dev_pd(x, cs, m) / c;
          const float mf = static_cast<float>(m);
          const float rs = static_cast<float>(1.0 / std::sqrt(v + kEps));
          ops.ln_apply_row(out + i * cs, x, gamma, beta, cs, mf, rs);
          mean[i] = mf;
          rstd[i] = rs;
        }
      });
}

void layernorm_backward(const KernelContext& ctx, float* dinp, float* dgamma,
                        float* dbeta, const float* dout, const float* inp,
                        const float* gamma, const float* mean,
                        const float* rstd, int bt, int c) {
  const simd::Ops& ops = ctx.simd();
  const std::size_t cs = static_cast<std::size_t>(c);
  const std::size_t bts = static_cast<std::size_t>(bt);
  // Pass 1 — dinp, row-sharded: two row reductions feed the elementwise
  // update.  Each row is owned by one shard: bit-exact.
  ctx.parallel_shards(
      bts, ctx.grain_rows(6 * cs), [&](int, std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float* x = inp + i * cs;
          const float* dy = dout + i * cs;
          double s1 = 0.0;
          double s2 = 0.0;
          ops.ln_bwd_reduce_row(dy, gamma, x, cs, mean[i], rstd[i], &s1, &s2);
          const float dnm = static_cast<float>(s1 / c);
          const float dnnm = static_cast<float>(s2 / c);
          ops.ln_bwd_dx_row(dinp + i * cs, dy, gamma, x, cs, mean[i], rstd[i],
                            dnm, dnnm);
        }
      });
  // Pass 2 — dgamma/dbeta, column-sharded: every column accumulates all BT
  // rows in order, so the result is bit-exact at any thread count.
  ctx.parallel_shards(cs, ctx.grain_rows(4 * bts),
                      [&](int, std::size_t c0, std::size_t c1) {
                        ops.ln_bwd_dgb_cols(dgamma, dbeta, dout, inp, mean,
                                            rstd, bts, cs, c0, c1);
                      });
}

void gelu_forward(const KernelContext& ctx, float* out, const float* inp,
                  std::size_t n) {
  const simd::Ops& ops = ctx.simd();
  ctx.parallel_shards(n, ctx.grain(),
                      [&](int, std::size_t i0, std::size_t i1) {
                        ops.gelu_fwd(out + i0, inp + i0, i1 - i0);
                      });
}

void gelu_backward(const KernelContext& ctx, float* dinp, const float* inp,
                   const float* dout, std::size_t n) {
  const simd::Ops& ops = ctx.simd();
  ctx.parallel_shards(n, ctx.grain(),
                      [&](int, std::size_t i0, std::size_t i1) {
                        ops.gelu_bwd(dinp + i0, inp + i0, dout + i0, i1 - i0);
                      });
}

void bias_gelu_forward(const KernelContext& ctx, float* out, const float* inp,
                       const float* bias, int bt, int c) {
  const simd::Ops& ops = ctx.simd();
  const std::size_t cs = static_cast<std::size_t>(c);
  ctx.parallel_shards(static_cast<std::size_t>(bt), ctx.grain_rows(2 * cs),
                      [&](int, std::size_t i0, std::size_t i1) {
                        ops.bias_gelu_fwd(out + i0 * cs, inp + i0 * cs, bias,
                                          i1 - i0, cs);
                      });
}

void bias_gelu_backward(const KernelContext& ctx, float* dinp,
                        const float* inp, const float* bias, const float* dout,
                        int bt, int c) {
  const simd::Ops& ops = ctx.simd();
  const std::size_t cs = static_cast<std::size_t>(c);
  ctx.parallel_shards(static_cast<std::size_t>(bt), ctx.grain_rows(3 * cs),
                      [&](int, std::size_t i0, std::size_t i1) {
                        ops.bias_gelu_bwd(dinp + i0 * cs, inp + i0 * cs, bias,
                                          dout + i0 * cs, i1 - i0, cs);
                      });
}

void residual_forward(const KernelContext& ctx, float* out, const float* a,
                      const float* b, std::size_t n) {
  const simd::Ops& ops = ctx.simd();
  ctx.parallel_shards(n, ctx.grain(),
                      [&](int, std::size_t i0, std::size_t i1) {
                        ops.add(out + i0, a + i0, b + i0, i1 - i0);
                      });
}

void residual_backward(const KernelContext& ctx, float* da, float* db,
                       const float* dout, std::size_t n) {
  const simd::Ops& ops = ctx.simd();
  ctx.parallel_shards(n, ctx.grain(),
                      [&](int, std::size_t i0, std::size_t i1) {
                        ops.acc(da + i0, dout + i0, i1 - i0);
                        ops.acc(db + i0, dout + i0, i1 - i0);
                      });
}

void alibi_slopes(float* slopes, int nh) {
  for (int h = 0; h < nh; ++h) {
    slopes[h] = std::exp2(-8.0f * static_cast<float>(h + 1) / static_cast<float>(nh));
  }
}

void attention_forward(const KernelContext& ctx, float* out, float* preatt,
                       float* att, const float* qkv, const float* slopes,
                       int b, int t, int c, int nh) {
  const int hs = c / nh;  // head size
  const float scale = 1.0f / std::sqrt(static_cast<float>(hs));
  const std::size_t tt = static_cast<std::size_t>(t) * t;
  const std::size_t pairs = static_cast<std::size_t>(b) * nh;
  const std::size_t pair_cost = tt * static_cast<std::size_t>(hs);
  const std::size_t c3 = 3 * static_cast<std::size_t>(c);
  const simd::Ops& ops = ctx.simd();

  // (batch, head) pairs are fully independent: each owns disjoint slices of
  // preatt/att/out, so sharding over them is race-free and bit-exact.
  ctx.parallel_shards(pairs, ctx.grain_rows(pair_cost), [&](int, std::size_t b0,
                                                            std::size_t b1) {
    for (std::size_t bh = b0; bh < b1; ++bh) {
      const int bi = static_cast<int>(bh) / nh;
      const int h = static_cast<int>(bh) % nh;
      const float slope = slopes[h];
      const std::size_t head_off = static_cast<std::size_t>(h) * hs;
      const float* qkv_b = qkv + static_cast<std::size_t>(bi) * t * c3;
      const float* kbase = qkv_b + c + head_off;
      const float* vbase = qkv_b + 2 * c + head_off;
      float* pre_h = preatt + (static_cast<std::size_t>(bi) * nh + h) * tt;
      float* att_h = att + (static_cast<std::size_t>(bi) * nh + h) * tt;
      for (int ti = 0; ti < t; ++ti) {
        const std::size_t count = static_cast<std::size_t>(ti) + 1;
        const float* q = qkv_b + static_cast<std::size_t>(ti) * c3 + head_off;
        float* pre_row = pre_h + static_cast<std::size_t>(ti) * t;
        float* att_row = att_h + static_cast<std::size_t>(ti) * t;

        // Fused scores + running max: logits with ALiBi bias
        // -slope*(ti - t2), causal mask beyond ti.
        const float maxv =
            ops.attn_scores_row(pre_row, q, kbase, c3, hs, count, scale,
                                slope, static_cast<std::size_t>(ti));
        // Fused exp + sum over the causal prefix (att keeps the exps).
        std::memcpy(att_row, pre_row, count * sizeof(float));
        const float sum = ops.exp_sum_f(att_row, count, maxv);
        const float inv = sum > 0.0f ? 1.0f / sum : 0.0f;
        ops.scale(att_row, count, inv);
        std::memset(pre_row + count, 0,
                    (static_cast<std::size_t>(t) - count) * sizeof(float));
        std::memset(att_row + count, 0,
                    (static_cast<std::size_t>(t) - count) * sizeof(float));

        // Weighted sum of values.
        float* o = out + (static_cast<std::size_t>(bi) * t + ti) * c +
                   head_off;
        ops.attn_av_row(o, att_row, vbase, c3, hs, count);
      }
    }
  });
}

void attention_backward(const KernelContext& ctx, float* dqkv, float* dpreatt,
                        float* datt, const float* dout, const float* qkv,
                        const float* att, int b, int t, int c, int nh) {
  const int hs = c / nh;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hs));
  const std::size_t tt = static_cast<std::size_t>(t) * t;
  const std::size_t pairs = static_cast<std::size_t>(b) * nh;
  const std::size_t pair_cost = 2 * tt * static_cast<std::size_t>(hs);
  const std::size_t c3 = 3 * static_cast<std::size_t>(c);
  const simd::Ops& ops = ctx.simd();

  // Like the forward: a (batch, head) pair only ever touches the head-h
  // slice of its own batch's dqkv rows, so pairs never alias.
  ctx.parallel_shards(pairs, ctx.grain_rows(pair_cost), [&](int, std::size_t b0,
                                                            std::size_t b1) {
    for (std::size_t bh = b0; bh < b1; ++bh) {
      const int bi = static_cast<int>(bh) / nh;
      const int h = static_cast<int>(bh) % nh;
      const std::size_t head_off = static_cast<std::size_t>(h) * hs;
      const float* qkv_b = qkv + static_cast<std::size_t>(bi) * t * c3;
      float* dqkv_b = dqkv + static_cast<std::size_t>(bi) * t * c3;
      const float* kbase = qkv_b + c + head_off;
      const float* vbase = qkv_b + 2 * c + head_off;
      float* dkbase = dqkv_b + c + head_off;
      float* dvbase = dqkv_b + 2 * c + head_off;
      const float* att_h = att + (static_cast<std::size_t>(bi) * nh + h) * tt;
      float* datt_h = datt + (static_cast<std::size_t>(bi) * nh + h) * tt;
      float* dpre_h = dpreatt + (static_cast<std::size_t>(bi) * nh + h) * tt;
      for (int ti = 0; ti < t; ++ti) {
        const std::size_t count = static_cast<std::size_t>(ti) + 1;
        const float* att_row = att_h + static_cast<std::size_t>(ti) * t;
        float* datt_row = datt_h + static_cast<std::size_t>(ti) * t;
        float* dpre_row = dpre_h + static_cast<std::size_t>(ti) * t;
        const float* q = qkv_b + static_cast<std::size_t>(ti) * c3 + head_off;
        float* dq = dqkv_b + static_cast<std::size_t>(ti) * c3 + head_off;
        const float* doh = dout +
                           (static_cast<std::size_t>(bi) * t + ti) * c +
                           head_off;

        // Backward through out = att @ V (datt and dV in one pass).
        ops.attn_bwd_av_row(datt_row, dvbase, att_row, vbase, doh, c3, hs,
                            count);
        // Backward through softmax: dpre = att * (datt - sum(att*datt)).
        ops.softmax_bwd_row(dpre_row, att_row, datt_row, count);
        // Backward through q.k^T * scale (ALiBi bias is constant: no grad).
        ops.attn_bwd_qk_row(dq, dkbase, dpre_row, kbase, q, c3, hs, count,
                            scale);
      }
    }
  });
}

void embedding_forward(const KernelContext& ctx, float* out, const int* tokens,
                       const float* table, int bt, int c) {
  ctx.parallel_shards(
      static_cast<std::size_t>(bt), ctx.grain_rows(static_cast<std::size_t>(c)),
      [&](int, std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float* row = table + static_cast<std::size_t>(tokens[i]) * c;
          std::memcpy(out + i * c, row,
                      sizeof(float) * static_cast<std::size_t>(c));
        }
      });
}

void embedding_backward(float* dtable, const int* tokens, const float* dout,
                        int bt, int c) {
  // Scatter-add: different rows can hit the same token id, so this stays
  // serial (it is a tiny fraction of the step anyway).
  const simd::Ops& ops = simd::ops();
  for (int i = 0; i < bt; ++i) {
    float* drow = dtable + static_cast<std::size_t>(tokens[i]) * c;
    const float* dy = dout + static_cast<std::size_t>(i) * c;
    ops.acc(drow, dy, static_cast<std::size_t>(c));
  }
}

void softmax_xent_forward(const KernelContext& ctx, float* losses,
                          float* probs, const float* logits,
                          const int* targets, int bt, int v) {
  const simd::Ops& ops = ctx.simd();
  const std::size_t vs = static_cast<std::size_t>(v);
  ctx.parallel_shards(
      static_cast<std::size_t>(bt), ctx.grain_rows(3 * vs),
      [&](int, std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const float* z = logits + i * vs;
          float* p = probs + i * vs;
          // Fused max / exp+sum / normalize: three passes over the row
          // instead of the unfused five (max, sub, exp, sum, div).
          const float maxv = ops.reduce_max(z, vs);
          const double sum = ops.exp_sum_pd(p, z, vs, maxv);
          const float inv = static_cast<float>(1.0 / sum);
          ops.scale(p, vs, inv);
          const int target = targets[i];
          if (target < 0) {
            losses[i] = 0.0f;
          } else {
            losses[i] = -std::log(std::max(p[target], 1e-12f));
          }
        }
      });
}

void softmax_xent_backward(const KernelContext& ctx, float* dlogits,
                           const float* probs, const int* targets, int bt,
                           int v, float scale) {
  const simd::Ops& ops = ctx.simd();
  const std::size_t vs = static_cast<std::size_t>(v);
  ctx.parallel_shards(
      static_cast<std::size_t>(bt), ctx.grain_rows(vs),
      [&](int, std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          const int target = targets[i];
          if (target < 0) continue;
          float* dz = dlogits + i * vs;
          // dz += probs*scale for the whole row, then fix up the target
          // column's -scale: one vector pass plus one scalar op.
          ops.axpy(dz, probs + i * vs, vs, scale);
          dz[target] -= scale;
        }
      });
}

void scale_inplace(const KernelContext& ctx, float* x, float s,
                   std::size_t n) {
  const simd::Ops& ops = ctx.simd();
  ctx.parallel_shards(n, ctx.grain(),
                      [&](int, std::size_t i0, std::size_t i1) {
                        ops.scale(x + i0, i1 - i0, s);
                      });
}

void axpy(const KernelContext& ctx, float* y, float a, const float* x,
          std::size_t n) {
  const simd::Ops& ops = ctx.simd();
  ctx.parallel_shards(n, ctx.grain(),
                      [&](int, std::size_t i0, std::size_t i1) {
                        ops.axpy(y + i0, x + i0, i1 - i0, a);
                      });
}

void sub(const KernelContext& ctx, float* out, const float* a, const float* b,
         std::size_t n) {
  const simd::Ops& ops = ctx.simd();
  ctx.parallel_shards(n, ctx.grain(),
                      [&](int, std::size_t i0, std::size_t i1) {
                        ops.sub(out + i0, a + i0, b + i0, i1 - i0);
                      });
}

double l2_norm(const KernelContext& ctx, const float* x, std::size_t n) {
  const simd::Ops& ops = ctx.simd();
  const std::size_t nb = (n + kNormBlock - 1) / kNormBlock;
  std::vector<double> partials(nb, 0.0);
  ctx.parallel_shards(nb, 1, [&](int, std::size_t b0, std::size_t b1) {
    for (std::size_t blk = b0; blk < b1; ++blk) {
      const std::size_t off = blk * kNormBlock;
      partials[blk] = ops.sumsq_pd(x + off, std::min(kNormBlock, n - off));
    }
  });
  double total = 0.0;
  for (const double p : partials) total += p;
  return std::sqrt(total);
}

// ------------------------------------------------------------------------
// Legacy signatures: route through the env-configured default context.

void matmul(float* out, const float* a, const float* b, int m, int k, int n) {
  matmul(default_context(), out, a, b, m, k, n);
}

void linear_forward(float* out, const float* inp, const float* weight,
                    const float* bias, int bt, int c, int oc) {
  linear_forward(default_context(), out, inp, weight, bias, bt, c, oc);
}

void linear_backward(float* dinp, float* dweight, float* dbias,
                     const float* dout, const float* inp, const float* weight,
                     int bt, int c, int oc) {
  linear_backward(default_context(), dinp, dweight, dbias, dout, inp, weight,
                  bt, c, oc);
}

void layernorm_forward(float* out, float* mean, float* rstd, const float* inp,
                       const float* gamma, const float* beta, int bt, int c) {
  layernorm_forward(default_context(), out, mean, rstd, inp, gamma, beta, bt,
                    c);
}

void layernorm_backward(float* dinp, float* dgamma, float* dbeta,
                        const float* dout, const float* inp, const float* gamma,
                        const float* mean, const float* rstd, int bt, int c) {
  layernorm_backward(default_context(), dinp, dgamma, dbeta, dout, inp, gamma,
                     mean, rstd, bt, c);
}

void gelu_forward(float* out, const float* inp, std::size_t n) {
  gelu_forward(default_context(), out, inp, n);
}

void gelu_backward(float* dinp, const float* inp, const float* dout,
                   std::size_t n) {
  gelu_backward(default_context(), dinp, inp, dout, n);
}

void bias_gelu_forward(float* out, const float* inp, const float* bias, int bt,
                       int c) {
  bias_gelu_forward(default_context(), out, inp, bias, bt, c);
}

void bias_gelu_backward(float* dinp, const float* inp, const float* bias,
                        const float* dout, int bt, int c) {
  bias_gelu_backward(default_context(), dinp, inp, bias, dout, bt, c);
}

void residual_forward(float* out, const float* a, const float* b,
                      std::size_t n) {
  residual_forward(default_context(), out, a, b, n);
}

void residual_backward(float* da, float* db, const float* dout,
                       std::size_t n) {
  residual_backward(default_context(), da, db, dout, n);
}

void attention_forward(float* out, float* preatt, float* att, const float* qkv,
                       const float* slopes, int b, int t, int c, int nh) {
  attention_forward(default_context(), out, preatt, att, qkv, slopes, b, t, c,
                    nh);
}

void attention_backward(float* dqkv, float* dpreatt, float* datt,
                        const float* dout, const float* qkv, const float* att,
                        int b, int t, int c, int nh) {
  attention_backward(default_context(), dqkv, dpreatt, datt, dout, qkv, att,
                     b, t, c, nh);
}

void embedding_forward(float* out, const int* tokens, const float* table,
                       int bt, int c) {
  embedding_forward(default_context(), out, tokens, table, bt, c);
}

void softmax_xent_forward(float* losses, float* probs, const float* logits,
                          const int* targets, int bt, int v) {
  softmax_xent_forward(default_context(), losses, probs, logits, targets, bt,
                       v);
}

void softmax_xent_backward(float* dlogits, const float* probs,
                           const int* targets, int bt, int v, float scale) {
  softmax_xent_backward(default_context(), dlogits, probs, targets, bt, v,
                        scale);
}

void scale_inplace(float* x, float s, std::size_t n) {
  scale_inplace(default_context(), x, s, n);
}

void axpy(float* y, float a, const float* x, std::size_t n) {
  axpy(default_context(), y, a, x, n);
}

void sub(float* out, const float* a, const float* b, std::size_t n) {
  sub(default_context(), out, a, b, n);
}

double l2_norm(const float* x, std::size_t n) {
  return l2_norm(default_context(), x, n);
}

}  // namespace photon::kernels
