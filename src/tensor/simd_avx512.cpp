// AVX-512 variant of the SIMD op table: 16 float lanes as one __m512, 16
// double lanes as 2x__m512d, 16 int32 lanes as one __m512i.  Compiled with
// -mavx512f -mavx512dq -ffp-contract=off (photon_mark_simd_sources); the DQ
// extension supplies extractf32x8/insertf32x8 for the fixed fold tree.  No
// FMA intrinsics, so results match the scalar TU bit-for-bit.

#include "tensor/simd.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

#include <cmath>
#include <cstring>
#include <limits>

namespace photon::simd::detail {
namespace {

struct vf {
  __m512 v;
};
struct vd {
  __m512d lo;  // lanes 0-7
  __m512d hi;  // lanes 8-15
};
struct vi {
  __m512i v;
};

inline vf f_load(const float* p) { return {_mm512_loadu_ps(p)}; }
inline void f_store(float* p, vf v) { _mm512_storeu_ps(p, v.v); }
inline vf f_set1(float x) { return {_mm512_set1_ps(x)}; }
inline vf f_zero() { return {_mm512_setzero_ps()}; }

inline vf f_add(vf a, vf b) { return {_mm512_add_ps(a.v, b.v)}; }
inline vf f_sub(vf a, vf b) { return {_mm512_sub_ps(a.v, b.v)}; }
inline vf f_mul(vf a, vf b) { return {_mm512_mul_ps(a.v, b.v)}; }
inline vf f_div(vf a, vf b) { return {_mm512_div_ps(a.v, b.v)}; }
inline vf f_min(vf a, vf b) { return {_mm512_min_ps(a.v, b.v)}; }
inline vf f_max(vf a, vf b) { return {_mm512_max_ps(a.v, b.v)}; }
inline vf f_sqrt(vf a) { return {_mm512_sqrt_ps(a.v)}; }
inline vf f_abs(vf a) {
  return {_mm512_castsi512_ps(_mm512_and_epi32(
      _mm512_castps_si512(a.v), _mm512_set1_epi32(0x7fffffff)))};
}
inline vf f_copysign(vf mag, vf sgn) {
  const __m512i sm = _mm512_set1_epi32(0x80000000u);
  return {_mm512_castsi512_ps(_mm512_or_epi32(
      _mm512_andnot_epi32(sm, _mm512_castps_si512(mag.v)),
      _mm512_and_epi32(sm, _mm512_castps_si512(sgn.v))))};
}

inline float f_hsum(vf v) {
  const __m256 s8 = _mm256_add_ps(_mm512_castps512_ps256(v.v),
                                  _mm512_extractf32x8_ps(v.v, 1));
  const __m128 s4 =
      _mm_add_ps(_mm256_castps256_ps128(s8), _mm256_extractf128_ps(s8, 1));
  const __m128 s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
  const __m128 s1 = _mm_add_ss(s2, _mm_shuffle_ps(s2, s2, 0x55));
  return _mm_cvtss_f32(s1);
}
inline float f_hmax(vf v) {
  const __m256 s8 = _mm256_max_ps(_mm512_castps512_ps256(v.v),
                                  _mm512_extractf32x8_ps(v.v, 1));
  const __m128 s4 =
      _mm_max_ps(_mm256_castps256_ps128(s8), _mm256_extractf128_ps(s8, 1));
  const __m128 s2 = _mm_max_ps(s4, _mm_movehl_ps(s4, s4));
  const __m128 s1 = _mm_max_ss(s2, _mm_shuffle_ps(s2, s2, 0x55));
  return _mm_cvtss_f32(s1);
}

inline vi f_to_i_nearest(vf x) { return {_mm512_cvtps_epi32(x.v)}; }
inline vf i_to_f(vi n) { return {_mm512_cvtepi32_ps(n.v)}; }
inline vf i_pow2f(vi n) {
  return {_mm512_castsi512_ps(
      _mm512_slli_epi32(_mm512_add_epi32(n.v, _mm512_set1_epi32(127)), 23))};
}
inline void i_store(std::int32_t* p, vi v) {
  _mm512_storeu_si512(p, v.v);
}
inline vf i8_to_f(const std::int8_t* p) {
  const __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return {_mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(raw))};
}

inline vd d_load(const double* p) {
  return {_mm512_loadu_pd(p), _mm512_loadu_pd(p + 8)};
}
inline void d_store(double* p, vd v) {
  _mm512_storeu_pd(p, v.lo);
  _mm512_storeu_pd(p + 8, v.hi);
}
inline vd d_set1(double x) {
  const __m512d v = _mm512_set1_pd(x);
  return {v, v};
}
inline vd d_zero() {
  const __m512d z = _mm512_setzero_pd();
  return {z, z};
}
inline vd d_add(vd a, vd b) {
  return {_mm512_add_pd(a.lo, b.lo), _mm512_add_pd(a.hi, b.hi)};
}
inline vd d_sub(vd a, vd b) {
  return {_mm512_sub_pd(a.lo, b.lo), _mm512_sub_pd(a.hi, b.hi)};
}
inline vd d_mul(vd a, vd b) {
  return {_mm512_mul_pd(a.lo, b.lo), _mm512_mul_pd(a.hi, b.hi)};
}
inline double d_hsum(vd v) {
  const __m512d s8 = _mm512_add_pd(v.lo, v.hi);
  const __m256d s4 = _mm256_add_pd(_mm512_castpd512_pd256(s8),
                                   _mm512_extractf64x4_pd(s8, 1));
  const __m128d s2 =
      _mm_add_pd(_mm256_castpd256_pd128(s4), _mm256_extractf128_pd(s4, 1));
  const __m128d s1 = _mm_add_sd(s2, _mm_unpackhi_pd(s2, s2));
  return _mm_cvtsd_f64(s1);
}
inline vd f_widen(vf x) {
  return {_mm512_cvtps_pd(_mm512_castps512_ps256(x.v)),
          _mm512_cvtps_pd(_mm512_extractf32x8_ps(x.v, 1))};
}
inline vf d_narrow(vd x) {
  const __m256 lo = _mm512_cvtpd_ps(x.lo);
  const __m256 hi = _mm512_cvtpd_ps(x.hi);
  return {_mm512_insertf32x8(_mm512_castps256_ps512(lo), hi, 1)};
}

#include "simd_kernels.inl"

}  // namespace

Ops make_ops_avx512() { return make_ops_impl(Variant::kAvx512); }

}  // namespace photon::simd::detail

#else  // AVX-512 unavailable at compile time: never selected at runtime
       // (supported() is false); alias scalar.

namespace photon::simd::detail {
Ops make_ops_avx512() { return make_ops_scalar(); }
}  // namespace photon::simd::detail

#endif
