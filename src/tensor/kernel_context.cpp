#include "tensor/kernel_context.hpp"

#include <algorithm>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "util/threadpool.hpp"

namespace photon::kernels {

KernelContext::KernelContext(ThreadPool* pool, int threads, std::size_t grain)
    : pool_(threads > 1 ? pool : nullptr),
      threads_(std::max(1, threads)),
      grain_(std::max<std::size_t>(1, grain)) {}

const KernelContext& KernelContext::serial() {
  static const KernelContext ctx;
  return ctx;
}

int KernelContext::effective_threads() const {
  if (pool_ == nullptr || threads_ <= 1) return 1;
  if (ThreadPool::on_worker_thread()) return 1;
  return threads_;
}

std::size_t KernelContext::grain_rows(std::size_t row_cost) const {
  return std::max<std::size_t>(1, grain_ / std::max<std::size_t>(1, row_cost));
}

int KernelContext::shard_count(std::size_t n, std::size_t min_grain) const {
  if (n == 0) return 1;
  min_grain = std::max<std::size_t>(1, min_grain);
  const std::size_t by_grain = (n + min_grain - 1) / min_grain;
  const std::size_t cap = static_cast<std::size_t>(effective_threads());
  return static_cast<int>(std::min(cap, by_grain));
}

void KernelContext::parallel_shards(std::size_t n, std::size_t min_grain,
                                    const ShardFn& fn) const {
  if (n == 0) return;
  const int shards = shard_count(n, min_grain);
  if (shards <= 1) {
    fn(0, 0, n);
    return;
  }
  const std::size_t base = n / static_cast<std::size_t>(shards);
  const std::size_t rem = n % static_cast<std::size_t>(shards);
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(shards) - 1);
  std::size_t begin = 0;
  for (int s = 0; s < shards; ++s) {
    const std::size_t end =
        begin + base + (static_cast<std::size_t>(s) < rem ? 1 : 0);
    if (s + 1 == shards) {
      fn(s, begin, end);  // caller thread works the last shard
    } else {
      futures.push_back(
          pool_->submit([&fn, s, begin, end] { fn(s, begin, end); }));
    }
    begin = end;
  }
  for (auto& f : futures) f.get();
}

KernelContext& default_context() {
  static KernelContext ctx = [] {
    int threads =
        static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
    if (const char* env = std::getenv("PHOTON_NUM_THREADS")) {
      threads = std::max(1, std::atoi(env));
    }
    std::size_t grain = KernelContext::kDefaultGrain;
    if (const char* env = std::getenv("PHOTON_KERNEL_GRAIN")) {
      const long g = std::atol(env);
      if (g > 0) grain = static_cast<std::size_t>(g);
    }
    return KernelContext(threads > 1 ? &global_pool() : nullptr, threads,
                         grain);
  }();
  return ctx;
}

void set_default_threads(int threads) {
  default_context() = KernelContext(threads > 1 ? &global_pool() : nullptr,
                                    threads, default_context().grain());
}

void set_default_grain(std::size_t grain) {
  const int threads = default_context().threads();
  default_context() = KernelContext(threads > 1 ? &global_pool() : nullptr,
                                    threads, grain);
}

}  // namespace photon::kernels
