// Scalar variant of the SIMD op table.  The primitives below are exact
// lane-by-lane mirrors of the AVX instructions the other TUs use — including
// vminps/vmaxps operand semantics, round-to-nearest-even conversions, and the
// fixed fold trees — so this TU produces bit-identical results to the vector
// variants.  Compiled with -ffp-contract=off (no FMA contraction) like every
// other consumer of simd_kernels.inl.

#include "tensor/simd.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

namespace photon::simd::detail {
namespace {

struct vf {
  float l[16];
};
struct vd {
  double l[16];
};
struct vi {
  std::int32_t l[16];
};

inline vf f_load(const float* p) {
  vf v;
  std::memcpy(v.l, p, sizeof(v.l));
  return v;
}
inline void f_store(float* p, vf v) { std::memcpy(p, v.l, sizeof(v.l)); }
inline vf f_set1(float x) {
  vf v;
  for (int j = 0; j < 16; ++j) v.l[j] = x;
  return v;
}
inline vf f_zero() { return f_set1(0.0f); }

inline vf f_add(vf a, vf b) {
  vf r;
  for (int j = 0; j < 16; ++j) r.l[j] = a.l[j] + b.l[j];
  return r;
}
inline vf f_sub(vf a, vf b) {
  vf r;
  for (int j = 0; j < 16; ++j) r.l[j] = a.l[j] - b.l[j];
  return r;
}
inline vf f_mul(vf a, vf b) {
  vf r;
  for (int j = 0; j < 16; ++j) r.l[j] = a.l[j] * b.l[j];
  return r;
}
inline vf f_div(vf a, vf b) {
  vf r;
  for (int j = 0; j < 16; ++j) r.l[j] = a.l[j] / b.l[j];
  return r;
}
// vminps/vmaxps semantics: result is the SECOND operand when the compare is
// false (covers +/-0 ties and NaN propagation the same way the intrinsics do).
inline vf f_min(vf a, vf b) {
  vf r;
  for (int j = 0; j < 16; ++j) r.l[j] = (a.l[j] < b.l[j]) ? a.l[j] : b.l[j];
  return r;
}
inline vf f_max(vf a, vf b) {
  vf r;
  for (int j = 0; j < 16; ++j) r.l[j] = (a.l[j] > b.l[j]) ? a.l[j] : b.l[j];
  return r;
}
inline vf f_sqrt(vf a) {
  vf r;
  for (int j = 0; j < 16; ++j) r.l[j] = std::sqrt(a.l[j]);
  return r;
}
inline vf f_abs(vf a) {
  vf r;
  for (int j = 0; j < 16; ++j) r.l[j] = std::fabs(a.l[j]);
  return r;
}
inline vf f_copysign(vf mag, vf sgn) {
  vf r;
  for (int j = 0; j < 16; ++j) r.l[j] = std::copysign(mag.l[j], sgn.l[j]);
  return r;
}

// Fixed fold trees (see simd.hpp): identical lane pairing in every variant.
inline float f_hsum(vf v) {
  float s8[8];
  for (int j = 0; j < 8; ++j) s8[j] = v.l[j] + v.l[j + 8];
  float s4[4];
  for (int j = 0; j < 4; ++j) s4[j] = s8[j] + s8[j + 4];
  float s2[2];
  for (int j = 0; j < 2; ++j) s2[j] = s4[j] + s4[j + 2];
  return s2[0] + s2[1];
}
inline float f_hmax(vf v) {
  float s8[8];
  for (int j = 0; j < 8; ++j)
    s8[j] = (v.l[j] > v.l[j + 8]) ? v.l[j] : v.l[j + 8];
  float s4[4];
  for (int j = 0; j < 4; ++j) s4[j] = (s8[j] > s8[j + 4]) ? s8[j] : s8[j + 4];
  float s2[2];
  for (int j = 0; j < 2; ++j) s2[j] = (s4[j] > s4[j + 2]) ? s4[j] : s4[j + 2];
  return (s2[0] > s2[1]) ? s2[0] : s2[1];
}

// cvtps2dq rounds to nearest-even under the default MXCSR mode; lrintf does
// the same under the default fenv mode.
inline vi f_to_i_nearest(vf a) {
  vi r;
  for (int j = 0; j < 16; ++j)
    r.l[j] = static_cast<std::int32_t>(std::lrintf(a.l[j]));
  return r;
}
inline vf i_to_f(vi a) {
  vf r;
  for (int j = 0; j < 16; ++j) r.l[j] = static_cast<float>(a.l[j]);
  return r;
}
// 2^n for n in [-127, 127] via exponent-field construction.
inline vf i_pow2f(vi n) {
  vf r;
  for (int j = 0; j < 16; ++j)
    r.l[j] = std::bit_cast<float>((n.l[j] + 127) << 23);
  return r;
}
inline void i_store(std::int32_t* p, vi v) { std::memcpy(p, v.l, sizeof(v.l)); }
inline vf i8_to_f(const std::int8_t* p) {
  vf r;
  for (int j = 0; j < 16; ++j) r.l[j] = static_cast<float>(p[j]);
  return r;
}

inline vd d_load(const double* p) {
  vd v;
  std::memcpy(v.l, p, sizeof(v.l));
  return v;
}
inline void d_store(double* p, vd v) { std::memcpy(p, v.l, sizeof(v.l)); }
inline vd d_set1(double x) {
  vd v;
  for (int j = 0; j < 16; ++j) v.l[j] = x;
  return v;
}
inline vd d_zero() { return d_set1(0.0); }
inline vd d_add(vd a, vd b) {
  vd r;
  for (int j = 0; j < 16; ++j) r.l[j] = a.l[j] + b.l[j];
  return r;
}
inline vd d_sub(vd a, vd b) {
  vd r;
  for (int j = 0; j < 16; ++j) r.l[j] = a.l[j] - b.l[j];
  return r;
}
inline vd d_mul(vd a, vd b) {
  vd r;
  for (int j = 0; j < 16; ++j) r.l[j] = a.l[j] * b.l[j];
  return r;
}
inline double d_hsum(vd v) {
  double s8[8];
  for (int j = 0; j < 8; ++j) s8[j] = v.l[j] + v.l[j + 8];
  double s4[4];
  for (int j = 0; j < 4; ++j) s4[j] = s8[j] + s8[j + 4];
  double s2[2];
  for (int j = 0; j < 2; ++j) s2[j] = s4[j] + s4[j + 2];
  return s2[0] + s2[1];
}
inline vd f_widen(vf a) {
  vd r;
  for (int j = 0; j < 16; ++j) r.l[j] = static_cast<double>(a.l[j]);
  return r;
}
// cvtpd2ps rounds to nearest-even, same as the static_cast.
inline vf d_narrow(vd a) {
  vf r;
  for (int j = 0; j < 16; ++j) r.l[j] = static_cast<float>(a.l[j]);
  return r;
}

#include "simd_kernels.inl"

}  // namespace

Ops make_ops_scalar() { return make_ops_impl(Variant::kScalar); }

}  // namespace photon::simd::detail
