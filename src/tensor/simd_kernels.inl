// Shared SIMD kernel bodies — included by each variant TU (simd_scalar.cpp,
// simd_avx2.cpp, simd_avx512.cpp) AFTER it defines the primitive API:
//
//   types:  vf (16 float lanes), vd (16 double lanes), vi (16 int32 lanes)
//   float:  f_load f_store f_set1 f_zero f_add f_sub f_mul f_div f_min f_max
//           f_sqrt f_abs f_copysign f_hsum f_hmax
//   int:    f_to_i_nearest i_to_f i_pow2f i_store i8_to_f
//   double: d_load d_store d_zero d_set1 d_add d_sub d_mul d_hsum
//           f_widen d_narrow
//
// Every op body below therefore executes the exact same IEEE op sequence in
// all three variants — the scalar TU's primitives are lane-by-lane mirrors
// of the AVX instructions (including vminps/vmaxps operand semantics and the
// fixed f_hsum/f_hmax fold tree) — which is what makes the cross-variant
// bit-identical contract hold (see simd.hpp).
//
// This file must be included inside the TU's anonymous namespace within
// photon::simd::detail.

constexpr std::size_t kLanes = 16;

// Walks [0, n) in full 16-lane strides; `i` is the block base and remains in
// scope after the loop so the masked tail (n - i < kLanes elements) can
// follow.  CPU analog of quick-mlp's grid-stride KERNEL_1D_LOOP.
#define PHOTON_SIMD_1D_LOOP(i, n) \
  std::size_t i = 0;              \
  for (; i + kLanes <= (n); i += kLanes)

// ---------------------------------------------------------------- partials --
// Tail handling goes through small stack buffers so the vector path stays
// uniform; tails run at most once per row/array so the copy cost is noise.

inline vf f_load_partial(const float* p, std::size_t cnt, float pad) {
  alignas(64) float tmp[kLanes];
  f_store(tmp, f_set1(pad));
  std::memcpy(tmp, p, cnt * sizeof(float));
  return f_load(tmp);
}

inline void f_store_partial(float* p, vf v, std::size_t cnt) {
  alignas(64) float tmp[kLanes];
  f_store(tmp, v);
  std::memcpy(p, tmp, cnt * sizeof(float));
}

// Zero lanes >= cnt (used when a padded lane survives a transform that does
// not map the pad to the reduction identity, e.g. exp or squared deviation).
inline vf f_keep(vf v, std::size_t cnt) {
  alignas(64) float tmp[kLanes];
  f_store(tmp, v);
  for (std::size_t j = cnt; j < kLanes; ++j) tmp[j] = 0.0f;
  return f_load(tmp);
}

inline vd d_keep(vd v, std::size_t cnt) {
  alignas(64) double tmp[kLanes];
  d_store(tmp, v);
  for (std::size_t j = cnt; j < kLanes; ++j) tmp[j] = 0.0;
  return d_load(tmp);
}

inline vf i8_load_partial_f(const std::int8_t* p, std::size_t cnt) {
  alignas(16) std::int8_t tmp[kLanes] = {};
  std::memcpy(tmp, p, cnt);
  return i8_to_f(tmp);
}

// ---------------------------------------------------------- transcendentals --
// Polynomial exp/erf evaluated with explicit mul+add (no FMA) so every
// variant — scalar included — produces the same bits.  expf follows
// Cephes/sse_mathfun (max rel err ~2e-7 over the clamped range); erf is
// Abramowitz & Stegun 7.1.26 (max abs err ~1.5e-7).

inline vf v_exp(vf x) {
  const vf one = f_set1(1.0f);
  // Clamp keeps the exponent n in [-127, 127] so i_pow2f stays normal.
  x = f_max(f_min(x, f_set1(88.3762626647950f)), f_set1(-88.3762626647949f));
  const vi n = f_to_i_nearest(f_mul(x, f_set1(1.44269504088896341f)));
  const vf fx = i_to_f(n);
  // Cody-Waite: r = x - n*ln2, split so the first subtraction is exact.
  vf r = f_sub(x, f_mul(fx, f_set1(0.693359375f)));
  r = f_sub(r, f_mul(fx, f_set1(-2.12194440e-4f)));
  const vf z = f_mul(r, r);
  vf y = f_set1(1.9875691500e-4f);
  y = f_add(f_mul(y, r), f_set1(1.3981999507e-3f));
  y = f_add(f_mul(y, r), f_set1(8.3334519073e-3f));
  y = f_add(f_mul(y, r), f_set1(4.1665795894e-2f));
  y = f_add(f_mul(y, r), f_set1(1.6666665459e-1f));
  y = f_add(f_mul(y, r), f_set1(5.0000001201e-1f));
  y = f_add(f_mul(y, z), r);
  y = f_add(y, one);
  return f_mul(y, i_pow2f(n));
}

inline vf v_erf(vf x) {
  const vf one = f_set1(1.0f);
  const vf t =
      f_div(one, f_add(one, f_mul(f_set1(0.3275911f), f_abs(x))));
  vf y = f_set1(1.061405429f);
  y = f_add(f_mul(y, t), f_set1(-1.453152027f));
  y = f_add(f_mul(y, t), f_set1(1.421413741f));
  y = f_add(f_mul(y, t), f_set1(-0.284496736f));
  y = f_add(f_mul(y, t), f_set1(0.254829592f));
  y = f_mul(y, t);
  const vf ex = v_exp(f_mul(f_mul(x, x), f_set1(-1.0f)));
  return f_copysign(f_sub(one, f_mul(y, ex)), x);
}

inline vf v_gelu(vf x) {
  const vf e = v_erf(f_mul(x, f_set1(0.70710678118654752440f)));
  return f_mul(f_mul(f_set1(0.5f), x), f_add(f_set1(1.0f), e));
}

inline vf v_gelu_grad(vf x) {
  const vf cdf = f_mul(
      f_set1(0.5f),
      f_add(f_set1(1.0f), v_erf(f_mul(x, f_set1(0.70710678118654752440f)))));
  const vf pdf = f_mul(f_set1(0.39894228040143267794f),
                       v_exp(f_mul(f_mul(x, x), f_set1(-0.5f))));
  return f_add(cdf, f_mul(x, pdf));
}

// ---------------------------------------------------------------- elementwise

inline void k_add(float* out, const float* a, const float* b, std::size_t n) {
  PHOTON_SIMD_1D_LOOP(i, n) {
    f_store(out + i, f_add(f_load(a + i), f_load(b + i)));
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    f_store_partial(out + i,
                    f_add(f_load_partial(a + i, cnt, 0.0f),
                          f_load_partial(b + i, cnt, 0.0f)),
                    cnt);
  }
}

inline void k_sub(float* out, const float* a, const float* b, std::size_t n) {
  PHOTON_SIMD_1D_LOOP(i, n) {
    f_store(out + i, f_sub(f_load(a + i), f_load(b + i)));
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    f_store_partial(out + i,
                    f_sub(f_load_partial(a + i, cnt, 0.0f),
                          f_load_partial(b + i, cnt, 0.0f)),
                    cnt);
  }
}

inline void k_acc(float* dst, const float* src, std::size_t n) {
  PHOTON_SIMD_1D_LOOP(i, n) {
    f_store(dst + i, f_add(f_load(dst + i), f_load(src + i)));
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    f_store_partial(dst + i,
                    f_add(f_load_partial(dst + i, cnt, 0.0f),
                          f_load_partial(src + i, cnt, 0.0f)),
                    cnt);
  }
}

inline void k_scale(float* x, std::size_t n, float s) {
  const vf vs = f_set1(s);
  PHOTON_SIMD_1D_LOOP(i, n) { f_store(x + i, f_mul(f_load(x + i), vs)); }
  if (i < n) {
    const std::size_t cnt = n - i;
    f_store_partial(x + i, f_mul(f_load_partial(x + i, cnt, 0.0f), vs), cnt);
  }
}

inline void k_axpy(float* y, const float* x, std::size_t n, float a) {
  const vf va = f_set1(a);
  PHOTON_SIMD_1D_LOOP(i, n) {
    f_store(y + i, f_add(f_load(y + i), f_mul(va, f_load(x + i))));
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    f_store_partial(y + i,
                    f_add(f_load_partial(y + i, cnt, 0.0f),
                          f_mul(va, f_load_partial(x + i, cnt, 0.0f))),
                    cnt);
  }
}

// ----------------------------------------------------------------- reductions

inline float k_dot(const float* a, const float* b, std::size_t n) {
  vf acc = f_zero();
  PHOTON_SIMD_1D_LOOP(i, n) {
    acc = f_add(acc, f_mul(f_load(a + i), f_load(b + i)));
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    acc = f_add(acc, f_mul(f_load_partial(a + i, cnt, 0.0f),
                           f_load_partial(b + i, cnt, 0.0f)));
  }
  return f_hsum(acc);
}

inline float k_reduce_max(const float* x, std::size_t n) {
  const float ninf = -std::numeric_limits<float>::infinity();
  vf acc = f_set1(ninf);
  PHOTON_SIMD_1D_LOOP(i, n) { acc = f_max(acc, f_load(x + i)); }
  if (i < n) {
    acc = f_max(acc, f_load_partial(x + i, n - i, ninf));
  }
  return f_hmax(acc);
}

inline float k_max_abs(const float* x, std::size_t n) {
  vf acc = f_zero();
  PHOTON_SIMD_1D_LOOP(i, n) { acc = f_max(acc, f_abs(f_load(x + i))); }
  if (i < n) {
    acc = f_max(acc, f_abs(f_load_partial(x + i, n - i, 0.0f)));
  }
  return f_hmax(acc);
}

inline double k_sum_pd(const float* x, std::size_t n) {
  vd acc = d_zero();
  PHOTON_SIMD_1D_LOOP(i, n) { acc = d_add(acc, f_widen(f_load(x + i))); }
  if (i < n) {
    acc = d_add(acc, f_widen(f_load_partial(x + i, n - i, 0.0f)));
  }
  return d_hsum(acc);
}

inline double k_sumsq_pd(const float* x, std::size_t n) {
  vd acc = d_zero();
  PHOTON_SIMD_1D_LOOP(i, n) {
    const vd w = f_widen(f_load(x + i));
    acc = d_add(acc, d_mul(w, w));
  }
  if (i < n) {
    const vd w = f_widen(f_load_partial(x + i, n - i, 0.0f));
    acc = d_add(acc, d_mul(w, w));
  }
  return d_hsum(acc);
}

inline double k_sumsq_dev_pd(const float* x, std::size_t n, double mean) {
  const vd vm = d_set1(mean);
  vd acc = d_zero();
  PHOTON_SIMD_1D_LOOP(i, n) {
    const vd dv = d_sub(f_widen(f_load(x + i)), vm);
    acc = d_add(acc, d_mul(dv, dv));
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    const vd dv = d_sub(f_widen(f_load_partial(x + i, cnt, 0.0f)), vm);
    // (0 - mean)^2 is not the identity: mask the padded lanes post-square.
    acc = d_add(acc, d_keep(d_mul(dv, dv), cnt));
  }
  return d_hsum(acc);
}

// --------------------------------------------------------------------- linear

inline void k_linear_row(float* y, const float* x, const float* w,
                         const float* bias, std::size_t c, std::size_t oc) {
  std::size_t o = 0;
  for (; o + 4 <= oc; o += 4) {
    const float* w0 = w + (o + 0) * c;
    const float* w1 = w + (o + 1) * c;
    const float* w2 = w + (o + 2) * c;
    const float* w3 = w + (o + 3) * c;
    vf a0 = f_zero(), a1 = f_zero(), a2 = f_zero(), a3 = f_zero();
    PHOTON_SIMD_1D_LOOP(i, c) {
      const vf xv = f_load(x + i);
      a0 = f_add(a0, f_mul(xv, f_load(w0 + i)));
      a1 = f_add(a1, f_mul(xv, f_load(w1 + i)));
      a2 = f_add(a2, f_mul(xv, f_load(w2 + i)));
      a3 = f_add(a3, f_mul(xv, f_load(w3 + i)));
    }
    if (i < c) {
      const std::size_t cnt = c - i;
      const vf xv = f_load_partial(x + i, cnt, 0.0f);
      a0 = f_add(a0, f_mul(xv, f_load_partial(w0 + i, cnt, 0.0f)));
      a1 = f_add(a1, f_mul(xv, f_load_partial(w1 + i, cnt, 0.0f)));
      a2 = f_add(a2, f_mul(xv, f_load_partial(w2 + i, cnt, 0.0f)));
      a3 = f_add(a3, f_mul(xv, f_load_partial(w3 + i, cnt, 0.0f)));
    }
    y[o + 0] = (bias != nullptr ? bias[o + 0] : 0.0f) + f_hsum(a0);
    y[o + 1] = (bias != nullptr ? bias[o + 1] : 0.0f) + f_hsum(a1);
    y[o + 2] = (bias != nullptr ? bias[o + 2] : 0.0f) + f_hsum(a2);
    y[o + 3] = (bias != nullptr ? bias[o + 3] : 0.0f) + f_hsum(a3);
  }
  for (; o < oc; ++o) {
    y[o] = (bias != nullptr ? bias[o] : 0.0f) + k_dot(x, w + o * c, c);
  }
}

inline void k_linear_bwd_dx_row(float* dx, const float* dy, const float* w,
                                std::size_t c, std::size_t oc) {
  // 4-output blocking reuses the dx vector across outputs; per-element
  // accumulation order over o stays strictly ascending.
  std::size_t o = 0;
  for (; o + 4 <= oc; o += 4) {
    const float* w0 = w + (o + 0) * c;
    const float* w1 = w + (o + 1) * c;
    const float* w2 = w + (o + 2) * c;
    const float* w3 = w + (o + 3) * c;
    const vf g0 = f_set1(dy[o + 0]);
    const vf g1 = f_set1(dy[o + 1]);
    const vf g2 = f_set1(dy[o + 2]);
    const vf g3 = f_set1(dy[o + 3]);
    PHOTON_SIMD_1D_LOOP(i, c) {
      vf xv = f_load(dx + i);
      xv = f_add(xv, f_mul(g0, f_load(w0 + i)));
      xv = f_add(xv, f_mul(g1, f_load(w1 + i)));
      xv = f_add(xv, f_mul(g2, f_load(w2 + i)));
      xv = f_add(xv, f_mul(g3, f_load(w3 + i)));
      f_store(dx + i, xv);
    }
    if (i < c) {
      const std::size_t cnt = c - i;
      vf xv = f_load_partial(dx + i, cnt, 0.0f);
      xv = f_add(xv, f_mul(g0, f_load_partial(w0 + i, cnt, 0.0f)));
      xv = f_add(xv, f_mul(g1, f_load_partial(w1 + i, cnt, 0.0f)));
      xv = f_add(xv, f_mul(g2, f_load_partial(w2 + i, cnt, 0.0f)));
      xv = f_add(xv, f_mul(g3, f_load_partial(w3 + i, cnt, 0.0f)));
      f_store_partial(dx + i, xv, cnt);
    }
  }
  for (; o < oc; ++o) {
    k_axpy(dx, w + o * c, c, dy[o]);
  }
}

inline void k_linear_bwd_wb(float* dw, float* db, const float* x,
                            const float* dy, std::size_t bt, std::size_t c,
                            std::size_t oc, std::size_t o0, std::size_t o1) {
  std::size_t o = o0;
  for (; o + 4 <= o1; o += 4) {
    float* d0 = dw + (o + 0) * c;
    float* d1 = dw + (o + 1) * c;
    float* d2 = dw + (o + 2) * c;
    float* d3 = dw + (o + 3) * c;
    float b0 = db != nullptr ? db[o + 0] : 0.0f;
    float b1 = db != nullptr ? db[o + 1] : 0.0f;
    float b2 = db != nullptr ? db[o + 2] : 0.0f;
    float b3 = db != nullptr ? db[o + 3] : 0.0f;
    for (std::size_t t = 0; t < bt; ++t) {
      const float* xr = x + t * c;
      const float* dyr = dy + t * oc + o;
      const float g0 = dyr[0];
      const float g1 = dyr[1];
      const float g2 = dyr[2];
      const float g3 = dyr[3];
      b0 += g0;
      b1 += g1;
      b2 += g2;
      b3 += g3;
      const vf v0 = f_set1(g0), v1 = f_set1(g1), v2 = f_set1(g2),
               v3 = f_set1(g3);
      PHOTON_SIMD_1D_LOOP(i, c) {
        const vf xv = f_load(xr + i);
        f_store(d0 + i, f_add(f_load(d0 + i), f_mul(v0, xv)));
        f_store(d1 + i, f_add(f_load(d1 + i), f_mul(v1, xv)));
        f_store(d2 + i, f_add(f_load(d2 + i), f_mul(v2, xv)));
        f_store(d3 + i, f_add(f_load(d3 + i), f_mul(v3, xv)));
      }
      if (i < c) {
        const std::size_t cnt = c - i;
        const vf xv = f_load_partial(xr + i, cnt, 0.0f);
        f_store_partial(
            d0 + i, f_add(f_load_partial(d0 + i, cnt, 0.0f), f_mul(v0, xv)),
            cnt);
        f_store_partial(
            d1 + i, f_add(f_load_partial(d1 + i, cnt, 0.0f), f_mul(v1, xv)),
            cnt);
        f_store_partial(
            d2 + i, f_add(f_load_partial(d2 + i, cnt, 0.0f), f_mul(v2, xv)),
            cnt);
        f_store_partial(
            d3 + i, f_add(f_load_partial(d3 + i, cnt, 0.0f), f_mul(v3, xv)),
            cnt);
      }
    }
    if (db != nullptr) {
      db[o + 0] = b0;
      db[o + 1] = b1;
      db[o + 2] = b2;
      db[o + 3] = b3;
    }
  }
  for (; o < o1; ++o) {
    float* drow = dw + o * c;
    float bacc = db != nullptr ? db[o] : 0.0f;
    for (std::size_t t = 0; t < bt; ++t) {
      const float g = dy[t * oc + o];
      bacc += g;
      k_axpy(drow, x + t * c, c, g);
    }
    if (db != nullptr) {
      db[o] = bacc;
    }
  }
}

// ------------------------------------------------------------------ layernorm

inline void k_ln_apply_row(float* y, const float* x, const float* gamma,
                           const float* beta, std::size_t c, float mean,
                           float rstd) {
  const vf vm = f_set1(mean);
  const vf vr = f_set1(rstd);
  PHOTON_SIMD_1D_LOOP(i, c) {
    const vf norm = f_mul(f_sub(f_load(x + i), vm), vr);
    f_store(y + i, f_add(f_mul(norm, f_load(gamma + i)), f_load(beta + i)));
  }
  if (i < c) {
    const std::size_t cnt = c - i;
    const vf norm = f_mul(f_sub(f_load_partial(x + i, cnt, 0.0f), vm), vr);
    f_store_partial(y + i,
                    f_add(f_mul(norm, f_load_partial(gamma + i, cnt, 0.0f)),
                          f_load_partial(beta + i, cnt, 0.0f)),
                    cnt);
  }
}

inline void k_ln_bwd_reduce_row(const float* dy, const float* gamma,
                                const float* x, std::size_t c, float mean,
                                float rstd, double* s1, double* s2) {
  const vf vm = f_set1(mean);
  const vf vr = f_set1(rstd);
  vd a1 = d_zero();
  vd a2 = d_zero();
  PHOTON_SIMD_1D_LOOP(i, c) {
    const vf dn = f_mul(f_load(gamma + i), f_load(dy + i));
    const vf norm = f_mul(f_sub(f_load(x + i), vm), vr);
    a1 = d_add(a1, f_widen(dn));
    a2 = d_add(a2, f_widen(f_mul(dn, norm)));
  }
  if (i < c) {
    const std::size_t cnt = c - i;
    // dy/gamma pad with 0 => dn = 0, and 0 * norm = +/-0, both sum
    // identities, so no masking is needed here.
    const vf dn = f_mul(f_load_partial(gamma + i, cnt, 0.0f),
                        f_load_partial(dy + i, cnt, 0.0f));
    const vf norm =
        f_mul(f_sub(f_load_partial(x + i, cnt, 0.0f), vm), vr);
    a1 = d_add(a1, f_widen(dn));
    a2 = d_add(a2, f_widen(f_mul(dn, norm)));
  }
  *s1 = d_hsum(a1);
  *s2 = d_hsum(a2);
}

inline void k_ln_bwd_dx_row(float* dx, const float* dy, const float* gamma,
                            const float* x, std::size_t c, float mean,
                            float rstd, float dnm, float dnnm) {
  const vf vm = f_set1(mean);
  const vf vr = f_set1(rstd);
  const vf vdnm = f_set1(dnm);
  const vf vdnnm = f_set1(dnnm);
  PHOTON_SIMD_1D_LOOP(i, c) {
    const vf dn = f_mul(f_load(gamma + i), f_load(dy + i));
    const vf norm = f_mul(f_sub(f_load(x + i), vm), vr);
    const vf upd =
        f_mul(f_sub(f_sub(dn, vdnm), f_mul(norm, vdnnm)), vr);
    f_store(dx + i, f_add(f_load(dx + i), upd));
  }
  if (i < c) {
    const std::size_t cnt = c - i;
    const vf dn = f_mul(f_load_partial(gamma + i, cnt, 0.0f),
                        f_load_partial(dy + i, cnt, 0.0f));
    const vf norm =
        f_mul(f_sub(f_load_partial(x + i, cnt, 0.0f), vm), vr);
    const vf upd =
        f_mul(f_sub(f_sub(dn, vdnm), f_mul(norm, vdnnm)), vr);
    f_store_partial(dx + i, f_add(f_load_partial(dx + i, cnt, 0.0f), upd),
                    cnt);
  }
}

inline void k_ln_bwd_dgb_cols(float* dgamma, float* dbeta, const float* dy,
                              const float* x, const float* means,
                              const float* rstds, std::size_t bt,
                              std::size_t c, std::size_t c0, std::size_t c1) {
  // Column-sharded: each column accumulates all bt rows in order, so the
  // result is bit-identical for any [c0, c1) split and any thread count.
  for (std::size_t i = c0; i < c1; i += kLanes) {
    const std::size_t cnt = (c1 - i < kLanes) ? (c1 - i) : kLanes;
    const bool full = cnt == kLanes;
    vf ga = full ? f_load(dgamma + i) : f_load_partial(dgamma + i, cnt, 0.0f);
    vf ba = full ? f_load(dbeta + i) : f_load_partial(dbeta + i, cnt, 0.0f);
    for (std::size_t t = 0; t < bt; ++t) {
      const float* xr = x + t * c;
      const float* dyr = dy + t * c;
      const vf dyv =
          full ? f_load(dyr + i) : f_load_partial(dyr + i, cnt, 0.0f);
      const vf xv = full ? f_load(xr + i) : f_load_partial(xr + i, cnt, 0.0f);
      const vf norm =
          f_mul(f_sub(xv, f_set1(means[t])), f_set1(rstds[t]));
      ga = f_add(ga, f_mul(dyv, norm));
      ba = f_add(ba, dyv);
    }
    if (full) {
      f_store(dgamma + i, ga);
      f_store(dbeta + i, ba);
    } else {
      f_store_partial(dgamma + i, ga, cnt);
      f_store_partial(dbeta + i, ba, cnt);
    }
  }
}

// ---------------------------------------------------------------- activations

inline void k_gelu_fwd(float* y, const float* x, std::size_t n) {
  PHOTON_SIMD_1D_LOOP(i, n) { f_store(y + i, v_gelu(f_load(x + i))); }
  if (i < n) {
    const std::size_t cnt = n - i;
    f_store_partial(y + i, v_gelu(f_load_partial(x + i, cnt, 0.0f)), cnt);
  }
}

inline void k_gelu_bwd(float* dx, const float* x, const float* dy,
                       std::size_t n) {
  PHOTON_SIMD_1D_LOOP(i, n) {
    const vf g = f_mul(f_load(dy + i), v_gelu_grad(f_load(x + i)));
    f_store(dx + i, f_add(f_load(dx + i), g));
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    const vf g = f_mul(f_load_partial(dy + i, cnt, 0.0f),
                       v_gelu_grad(f_load_partial(x + i, cnt, 0.0f)));
    f_store_partial(dx + i, f_add(f_load_partial(dx + i, cnt, 0.0f), g), cnt);
  }
}

inline void k_bias_gelu_fwd(float* y, const float* x, const float* bias,
                            std::size_t rows, std::size_t c) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xr = x + r * c;
    float* yr = y + r * c;
    PHOTON_SIMD_1D_LOOP(i, c) {
      f_store(yr + i, v_gelu(f_add(f_load(xr + i), f_load(bias + i))));
    }
    if (i < c) {
      const std::size_t cnt = c - i;
      f_store_partial(yr + i,
                      v_gelu(f_add(f_load_partial(xr + i, cnt, 0.0f),
                                   f_load_partial(bias + i, cnt, 0.0f))),
                      cnt);
    }
  }
}

inline void k_bias_gelu_bwd(float* dx, const float* x, const float* bias,
                            const float* dy, std::size_t rows, std::size_t c) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float* xr = x + r * c;
    const float* dyr = dy + r * c;
    float* dxr = dx + r * c;
    PHOTON_SIMD_1D_LOOP(i, c) {
      const vf pre = f_add(f_load(xr + i), f_load(bias + i));
      const vf g = f_mul(f_load(dyr + i), v_gelu_grad(pre));
      f_store(dxr + i, f_add(f_load(dxr + i), g));
    }
    if (i < c) {
      const std::size_t cnt = c - i;
      const vf pre = f_add(f_load_partial(xr + i, cnt, 0.0f),
                           f_load_partial(bias + i, cnt, 0.0f));
      const vf g = f_mul(f_load_partial(dyr + i, cnt, 0.0f), v_gelu_grad(pre));
      f_store_partial(dxr + i, f_add(f_load_partial(dxr + i, cnt, 0.0f), g),
                      cnt);
    }
  }
}

// ------------------------------------------------------- softmax / attention

inline float k_attn_scores_row(float* pre, const float* q, const float* kbase,
                               std::size_t kstride, std::size_t hs,
                               std::size_t count, float scale, float slope,
                               std::size_t ti) {
  float maxv = -std::numeric_limits<float>::infinity();
  for (std::size_t t2 = 0; t2 < count; ++t2) {
    const float d = k_dot(q, kbase + t2 * kstride, hs);
    const float v = d * scale - slope * static_cast<float>(ti - t2);
    pre[t2] = v;
    if (v > maxv) {
      maxv = v;
    }
  }
  return maxv;
}

inline float k_exp_sum_f(float* x, std::size_t n, float maxv) {
  const vf vm = f_set1(maxv);
  vf acc = f_zero();
  PHOTON_SIMD_1D_LOOP(i, n) {
    const vf e = v_exp(f_sub(f_load(x + i), vm));
    f_store(x + i, e);
    acc = f_add(acc, e);
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    const vf e = v_exp(f_sub(f_load_partial(x + i, cnt, 0.0f), vm));
    f_store_partial(x + i, e, cnt);
    // exp(pad - maxv) != 0: mask before accumulating.
    acc = f_add(acc, f_keep(e, cnt));
  }
  return f_hsum(acc);
}

inline double k_exp_sum_pd(float* probs, const float* logits, std::size_t n,
                           float maxv) {
  const vf vm = f_set1(maxv);
  vd acc = d_zero();
  PHOTON_SIMD_1D_LOOP(i, n) {
    const vf e = v_exp(f_sub(f_load(logits + i), vm));
    f_store(probs + i, e);
    acc = d_add(acc, f_widen(e));
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    const vf e = v_exp(f_sub(f_load_partial(logits + i, cnt, 0.0f), vm));
    f_store_partial(probs + i, e, cnt);
    acc = d_add(acc, f_widen(f_keep(e, cnt)));
  }
  return d_hsum(acc);
}

inline void k_attn_av_row(float* o, const float* att, const float* vbase,
                          std::size_t vstride, std::size_t hs,
                          std::size_t count) {
  for (std::size_t i = 0; i < hs; i += kLanes) {
    const std::size_t cnt = (hs - i < kLanes) ? (hs - i) : kLanes;
    const bool full = cnt == kLanes;
    vf acc = f_zero();
    for (std::size_t t2 = 0; t2 < count; ++t2) {
      const float* vr = vbase + t2 * vstride;
      const vf vv = full ? f_load(vr + i) : f_load_partial(vr + i, cnt, 0.0f);
      acc = f_add(acc, f_mul(f_set1(att[t2]), vv));
    }
    if (full) {
      f_store(o + i, acc);
    } else {
      f_store_partial(o + i, acc, cnt);
    }
  }
}

inline void k_attn_bwd_av_row(float* datt, float* dvbase, const float* att,
                              const float* vbase, const float* doh,
                              std::size_t vstride, std::size_t hs,
                              std::size_t count) {
  for (std::size_t t2 = 0; t2 < count; ++t2) {
    const float* vr = vbase + t2 * vstride;
    float* dvr = dvbase + t2 * vstride;
    const vf va = f_set1(att[t2]);
    vf dacc = f_zero();
    PHOTON_SIMD_1D_LOOP(i, hs) {
      const vf dov = f_load(doh + i);
      dacc = f_add(dacc, f_mul(f_load(vr + i), dov));
      f_store(dvr + i, f_add(f_load(dvr + i), f_mul(va, dov)));
    }
    if (i < hs) {
      const std::size_t cnt = hs - i;
      const vf dov = f_load_partial(doh + i, cnt, 0.0f);
      dacc = f_add(dacc, f_mul(f_load_partial(vr + i, cnt, 0.0f), dov));
      f_store_partial(dvr + i,
                      f_add(f_load_partial(dvr + i, cnt, 0.0f),
                            f_mul(va, dov)),
                      cnt);
    }
    datt[t2] += f_hsum(dacc);
  }
}

inline void k_softmax_bwd_row(float* dpre, const float* att, const float* datt,
                              std::size_t count) {
  const float dotv = k_dot(att, datt, count);
  const vf vd0 = f_set1(dotv);
  PHOTON_SIMD_1D_LOOP(i, count) {
    const vf upd = f_mul(f_load(att + i), f_sub(f_load(datt + i), vd0));
    f_store(dpre + i, f_add(f_load(dpre + i), upd));
  }
  if (i < count) {
    const std::size_t cnt = count - i;
    const vf upd = f_mul(f_load_partial(att + i, cnt, 0.0f),
                         f_sub(f_load_partial(datt + i, cnt, 0.0f), vd0));
    f_store_partial(dpre + i, f_add(f_load_partial(dpre + i, cnt, 0.0f), upd),
                    cnt);
  }
}

inline void k_attn_bwd_qk_row(float* dq, float* dkbase, const float* dpre,
                              const float* kbase, const float* q,
                              std::size_t kstride, std::size_t hs,
                              std::size_t count, float scale) {
  for (std::size_t t2 = 0; t2 < count; ++t2) {
    const float g = dpre[t2] * scale;
    const vf vg = f_set1(g);
    const float* kr = kbase + t2 * kstride;
    float* dkr = dkbase + t2 * kstride;
    PHOTON_SIMD_1D_LOOP(i, hs) {
      f_store(dq + i, f_add(f_load(dq + i), f_mul(vg, f_load(kr + i))));
      f_store(dkr + i, f_add(f_load(dkr + i), f_mul(vg, f_load(q + i))));
    }
    if (i < hs) {
      const std::size_t cnt = hs - i;
      f_store_partial(dq + i,
                      f_add(f_load_partial(dq + i, cnt, 0.0f),
                            f_mul(vg, f_load_partial(kr + i, cnt, 0.0f))),
                      cnt);
      f_store_partial(dkr + i,
                      f_add(f_load_partial(dkr + i, cnt, 0.0f),
                            f_mul(vg, f_load_partial(q + i, cnt, 0.0f))),
                      cnt);
    }
  }
}

// ------------------------------------------------------------------ optimizer

inline void k_adamw(float* p, float* m, float* v, const float* g,
                    std::size_t n, float gscale, float lr, float beta1,
                    float beta2, float bc1, float bc2, float eps, float wd) {
  const vf vgs = f_set1(gscale);
  const vf vb1 = f_set1(beta1);
  const vf vb2 = f_set1(beta2);
  const vf v1b1 = f_set1(1.0f - beta1);
  const vf v1b2 = f_set1(1.0f - beta2);
  const vf vbc1 = f_set1(bc1);
  const vf vbc2 = f_set1(bc2);
  const vf veps = f_set1(eps);
  const vf vlr = f_set1(lr);
  const vf vwd = f_set1(wd);
  PHOTON_SIMD_1D_LOOP(i, n) {
    const vf gc = f_mul(f_load(g + i), vgs);
    const vf mv = f_add(f_mul(vb1, f_load(m + i)), f_mul(v1b1, gc));
    const vf vv =
        f_add(f_mul(vb2, f_load(v + i)), f_mul(f_mul(v1b2, gc), gc));
    f_store(m + i, mv);
    f_store(v + i, vv);
    const vf mhat = f_div(mv, vbc1);
    const vf vhat = f_div(vv, vbc2);
    const vf upd =
        f_add(f_div(mhat, f_add(f_sqrt(vhat), veps)),
              f_mul(vwd, f_load(p + i)));
    f_store(p + i, f_sub(f_load(p + i), f_mul(vlr, upd)));
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    const vf gc = f_mul(f_load_partial(g + i, cnt, 0.0f), vgs);
    const vf mv =
        f_add(f_mul(vb1, f_load_partial(m + i, cnt, 0.0f)), f_mul(v1b1, gc));
    const vf vv = f_add(f_mul(vb2, f_load_partial(v + i, cnt, 0.0f)),
                        f_mul(f_mul(v1b2, gc), gc));
    f_store_partial(m + i, mv, cnt);
    f_store_partial(v + i, vv, cnt);
    const vf mhat = f_div(mv, vbc1);
    const vf vhat = f_div(vv, vbc2);
    const vf pv = f_load_partial(p + i, cnt, 0.0f);
    const vf upd =
        f_add(f_div(mhat, f_add(f_sqrt(vhat), veps)), f_mul(vwd, pv));
    f_store_partial(p + i, f_sub(pv, f_mul(vlr, upd)), cnt);
  }
}

inline void k_momentum(float* p, float* buf, const float* g, std::size_t n,
                       float lr, float mu) {
  const vf vlr = f_set1(lr);
  const vf vmu = f_set1(mu);
  PHOTON_SIMD_1D_LOOP(i, n) {
    const vf bv = f_add(f_mul(vmu, f_load(buf + i)), f_load(g + i));
    f_store(buf + i, bv);
    f_store(p + i, f_sub(f_load(p + i), f_mul(vlr, bv)));
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    const vf bv = f_add(f_mul(vmu, f_load_partial(buf + i, cnt, 0.0f)),
                        f_load_partial(g + i, cnt, 0.0f));
    f_store_partial(buf + i, bv, cnt);
    f_store_partial(p + i,
                    f_sub(f_load_partial(p + i, cnt, 0.0f), f_mul(vlr, bv)),
                    cnt);
  }
}

inline void k_nesterov(float* p, float* buf, const float* g, std::size_t n,
                       float lr, float mu, int initialized) {
  const vf vlr = f_set1(lr);
  const vf vmu = f_set1(mu);
  PHOTON_SIMD_1D_LOOP(i, n) {
    const vf gv = f_load(g + i);
    const vf bv = initialized != 0
                      ? f_add(f_mul(vmu, f_load(buf + i)), gv)
                      : gv;
    f_store(buf + i, bv);
    const vf upd = f_add(gv, f_mul(vmu, bv));
    f_store(p + i, f_sub(f_load(p + i), f_mul(vlr, upd)));
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    const vf gv = f_load_partial(g + i, cnt, 0.0f);
    const vf bv = initialized != 0
                      ? f_add(f_mul(vmu, f_load_partial(buf + i, cnt, 0.0f)),
                              gv)
                      : gv;
    f_store_partial(buf + i, bv, cnt);
    const vf upd = f_add(gv, f_mul(vmu, bv));
    f_store_partial(p + i,
                    f_sub(f_load_partial(p + i, cnt, 0.0f), f_mul(vlr, upd)),
                    cnt);
  }
}

// ---------------------------------------------------------------- aggregation

inline void k_sum_rows_pd(float* out, const float* const* rows, std::size_t k,
                          std::size_t n) {
  PHOTON_SIMD_1D_LOOP(i, n) {
    vd acc = d_zero();
    for (std::size_t r = 0; r < k; ++r) {
      acc = d_add(acc, f_widen(f_load(rows[r] + i)));
    }
    f_store(out + i, d_narrow(acc));
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    vd acc = d_zero();
    for (std::size_t r = 0; r < k; ++r) {
      acc = d_add(acc, f_widen(f_load_partial(rows[r] + i, cnt, 0.0f)));
    }
    f_store_partial(out + i, d_narrow(acc), cnt);
  }
}

inline void k_mean_rows_pd(float* const* rows, std::size_t k, std::size_t n,
                           double inv) {
  const vd vinv = d_set1(inv);
  PHOTON_SIMD_1D_LOOP(i, n) {
    vd acc = d_zero();
    for (std::size_t r = 0; r < k; ++r) {
      acc = d_add(acc, f_widen(f_load(rows[r] + i)));
    }
    const vf mv = d_narrow(d_mul(acc, vinv));
    for (std::size_t r = 0; r < k; ++r) {
      f_store(rows[r] + i, mv);
    }
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    vd acc = d_zero();
    for (std::size_t r = 0; r < k; ++r) {
      acc = d_add(acc, f_widen(f_load_partial(rows[r] + i, cnt, 0.0f)));
    }
    const vf mv = d_narrow(d_mul(acc, vinv));
    for (std::size_t r = 0; r < k; ++r) {
      f_store_partial(rows[r] + i, mv, cnt);
    }
  }
}

// --------------------------------------------------------------- quantization

inline void k_quant_i8(std::int8_t* codes, const float* x, std::size_t n,
                       float inv) {
  const vf vinv = f_set1(inv);
  alignas(64) std::int32_t tmp[kLanes];
  PHOTON_SIMD_1D_LOOP(i, n) {
    i_store(tmp, f_to_i_nearest(f_mul(f_load(x + i), vinv)));
    for (std::size_t j = 0; j < kLanes; ++j) {
      std::int32_t t = tmp[j];
      t = t < -127 ? -127 : (t > 127 ? 127 : t);
      codes[i + j] = static_cast<std::int8_t>(t);
    }
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    i_store(tmp, f_to_i_nearest(f_mul(f_load_partial(x + i, cnt, 0.0f), vinv)));
    for (std::size_t j = 0; j < cnt; ++j) {
      std::int32_t t = tmp[j];
      t = t < -127 ? -127 : (t > 127 ? 127 : t);
      codes[i + j] = static_cast<std::int8_t>(t);
    }
  }
}

inline void k_dequant_i8(float* out, const std::int8_t* codes, std::size_t n,
                         float factor) {
  const vf vfac = f_set1(factor);
  PHOTON_SIMD_1D_LOOP(i, n) {
    f_store(out + i, f_mul(i8_to_f(codes + i), vfac));
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    f_store_partial(out + i,
                    f_mul(i8_load_partial_f(codes + i, cnt), vfac), cnt);
  }
}

// Quantize with fused error-feedback residual: the vector half mirrors
// k_quant_i8 exactly (same rounding, same clamp), and the residual is the
// scalar IEEE expression x - float(code)*factor per lane, so every variant
// produces bit-identical codes AND residuals.
inline void k_quant_i8_ef(std::int8_t* codes, float* res, const float* x,
                          std::size_t n, float inv, float factor) {
  const vf vinv = f_set1(inv);
  alignas(64) std::int32_t tmp[kLanes];
  PHOTON_SIMD_1D_LOOP(i, n) {
    i_store(tmp, f_to_i_nearest(f_mul(f_load(x + i), vinv)));
    for (std::size_t j = 0; j < kLanes; ++j) {
      std::int32_t t = tmp[j];
      t = t < -127 ? -127 : (t > 127 ? 127 : t);
      codes[i + j] = static_cast<std::int8_t>(t);
      res[i + j] = x[i + j] - static_cast<float>(t) * factor;
    }
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    i_store(tmp, f_to_i_nearest(f_mul(f_load_partial(x + i, cnt, 0.0f), vinv)));
    for (std::size_t j = 0; j < cnt; ++j) {
      std::int32_t t = tmp[j];
      t = t < -127 ? -127 : (t > 127 ? 127 : t);
      codes[i + j] = static_cast<std::int8_t>(t);
      res[i + j] = x[i + j] - static_cast<float>(t) * factor;
    }
  }
}

// hash_combine(a, b) from util/rng.hpp, restated locally so the kernel layer
// stays dependency-free.  Must match that definition bit for bit: the
// stochastic quantizer's draws are part of the determinism contract.
inline std::uint64_t k_sr_hash(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Stochastic-rounding quantize.  The scale multiply is vectorized; the
// rounding decision is scalar per lane but stateless — each element draws
// u01(hash(seed, base+i)) instead of consuming a sequential rng stream, so
// any sharding (threads, lanes, call order within a call) reproduces the
// same codes bit for bit.
inline void k_quant_i8_sr(std::int8_t* codes, const float* x, std::size_t n,
                          float inv, std::uint64_t seed, std::uint64_t base) {
  const vf vinv = f_set1(inv);
  alignas(64) float tv[kLanes];
  const auto lane = [seed, base](std::size_t idx, float v) {
    const float fl = std::floor(v);
    const float frac = v - fl;
    const std::uint64_t h = k_sr_hash(seed, base + idx);
    const float u = static_cast<float>(h >> 40) * 0x1.0p-24f;
    float r = fl + (u < frac ? 1.0f : 0.0f);
    r = r < -127.0f ? -127.0f : (r > 127.0f ? 127.0f : r);
    return static_cast<std::int8_t>(r);
  };
  PHOTON_SIMD_1D_LOOP(i, n) {
    f_store(tv, f_mul(f_load(x + i), vinv));
    for (std::size_t j = 0; j < kLanes; ++j) codes[i + j] = lane(i + j, tv[j]);
  }
  if (i < n) {
    const std::size_t cnt = n - i;
    f_store(tv, f_mul(f_load_partial(x + i, cnt, 0.0f), vinv));
    for (std::size_t j = 0; j < cnt; ++j) codes[i + j] = lane(i + j, tv[j]);
  }
}

#undef PHOTON_SIMD_1D_LOOP

// Secure-aggregation ring kernels (DESIGN.md §14).  Integer mod-2^64
// arithmetic and the stateless counter PRG (k_sr_hash keyed on the absolute
// element index) are exact in every variant, so these portable loops are
// bit-identical across scalar/AVX2/AVX-512 and any shard width by
// construction.  The only float op — the fixed-point encode — is one double
// multiply + llrint, identical everywhere under -ffp-contract=off.
inline void k_secagg_mask_accum(std::uint64_t* acc, const float* x,
                                double scale, const std::uint64_t* seeds,
                                const std::int8_t* signs, std::size_t n_pairs,
                                std::uint64_t base, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const long long q = std::llrint(static_cast<double>(x[i]) * scale);
    std::uint64_t v = static_cast<std::uint64_t>(static_cast<std::int64_t>(q));
    const std::uint64_t idx = base + i;
    for (std::size_t p = 0; p < n_pairs; ++p) {
      const std::uint64_t m = k_sr_hash(seeds[p], idx);
      v += signs[p] >= 0 ? m : 0ULL - m;
    }
    acc[i] += v;
  }
}

inline void k_secagg_prg_accum(std::uint64_t* acc, std::uint64_t seed,
                               std::int8_t sign, std::uint64_t base,
                               std::size_t n) {
  if (sign >= 0) {
    for (std::size_t i = 0; i < n; ++i) acc[i] += k_sr_hash(seed, base + i);
  } else {
    for (std::size_t i = 0; i < n; ++i) acc[i] -= k_sr_hash(seed, base + i);
  }
}

inline void k_secagg_decode(float* out, const std::uint64_t* acc, double inv,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(
        static_cast<double>(static_cast<std::int64_t>(acc[i])) * inv);
  }
}

inline Ops make_ops_impl(Variant var) {
  Ops o;
  o.variant = var;
  o.add = &k_add;
  o.sub = &k_sub;
  o.acc = &k_acc;
  o.scale = &k_scale;
  o.axpy = &k_axpy;
  o.dot = &k_dot;
  o.reduce_max = &k_reduce_max;
  o.max_abs = &k_max_abs;
  o.sum_pd = &k_sum_pd;
  o.sumsq_pd = &k_sumsq_pd;
  o.sumsq_dev_pd = &k_sumsq_dev_pd;
  o.linear_row = &k_linear_row;
  o.linear_bwd_dx_row = &k_linear_bwd_dx_row;
  o.linear_bwd_wb = &k_linear_bwd_wb;
  o.ln_apply_row = &k_ln_apply_row;
  o.ln_bwd_reduce_row = &k_ln_bwd_reduce_row;
  o.ln_bwd_dx_row = &k_ln_bwd_dx_row;
  o.ln_bwd_dgb_cols = &k_ln_bwd_dgb_cols;
  o.gelu_fwd = &k_gelu_fwd;
  o.gelu_bwd = &k_gelu_bwd;
  o.bias_gelu_fwd = &k_bias_gelu_fwd;
  o.bias_gelu_bwd = &k_bias_gelu_bwd;
  o.attn_scores_row = &k_attn_scores_row;
  o.exp_sum_f = &k_exp_sum_f;
  o.exp_sum_pd = &k_exp_sum_pd;
  o.attn_av_row = &k_attn_av_row;
  o.attn_bwd_av_row = &k_attn_bwd_av_row;
  o.softmax_bwd_row = &k_softmax_bwd_row;
  o.attn_bwd_qk_row = &k_attn_bwd_qk_row;
  o.adamw = &k_adamw;
  o.momentum = &k_momentum;
  o.nesterov = &k_nesterov;
  o.sum_rows_pd = &k_sum_rows_pd;
  o.mean_rows_pd = &k_mean_rows_pd;
  o.quant_i8 = &k_quant_i8;
  o.dequant_i8 = &k_dequant_i8;
  o.quant_i8_ef = &k_quant_i8_ef;
  o.quant_i8_sr = &k_quant_i8_sr;
  o.secagg_mask_accum = &k_secagg_mask_accum;
  o.secagg_prg_accum = &k_secagg_prg_accum;
  o.secagg_decode = &k_secagg_decode;
  return o;
}
