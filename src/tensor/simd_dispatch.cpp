// Startup CPUID detection + PHOTON_SIMD override for the SIMD op tables.
// The three tables are built once; the active pointer is an atomic so tests
// can flip variants (set_active_variant) without racing readers.

#include "tensor/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace photon::simd {
namespace {

struct Tables {
  Ops tab[3];
  Tables() {
    tab[0] = detail::make_ops_scalar();
    tab[1] = detail::make_ops_avx2();
    tab[2] = detail::make_ops_avx512();
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

bool cpu_supports(Variant v) {
  switch (v) {
    case Variant::kScalar:
      return true;
    case Variant::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Variant::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0;
#else
      return false;
#endif
  }
  return false;
}

Variant degrade(Variant v) {
  if (v == Variant::kAvx512 && !cpu_supports(Variant::kAvx512)) {
    v = Variant::kAvx2;
  }
  if (v == Variant::kAvx2 && !cpu_supports(Variant::kAvx2)) {
    v = Variant::kScalar;
  }
  return v;
}

Variant startup_variant() {
  Variant pick = degrade(Variant::kAvx512);
  if (const char* env = std::getenv("PHOTON_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) {
      pick = Variant::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      pick = degrade(Variant::kAvx2);
    } else if (std::strcmp(env, "avx512") == 0) {
      pick = degrade(Variant::kAvx512);
    }
    // Unrecognized values fall through to autodetection.
  }
  return pick;
}

std::atomic<const Ops*>& active_slot() {
  static std::atomic<const Ops*> slot{
      &tables().tab[static_cast<int>(startup_variant())]};
  return slot;
}

}  // namespace

const Ops& ops() {
  return *active_slot().load(std::memory_order_acquire);
}

const Ops& ops(Variant v) { return tables().tab[static_cast<int>(v)]; }

Variant active_variant() { return ops().variant; }

bool supported(Variant v) { return cpu_supports(v); }

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kScalar:
      return "scalar";
    case Variant::kAvx2:
      return "avx2";
    case Variant::kAvx512:
      return "avx512";
  }
  return "unknown";
}

Variant set_active_variant(Variant v) {
  const Variant eff = degrade(v);
  active_slot().store(&tables().tab[static_cast<int>(eff)],
                      std::memory_order_release);
  return eff;
}

}  // namespace photon::simd
