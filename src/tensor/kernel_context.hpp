#pragma once
// Intra-op parallelism context for the tensor kernels.
//
// A KernelContext bundles a ThreadPool handle with a thread count and a
// grain size (minimum scalar work per shard).  Kernels shard their row/pair
// loops over it via parallel_shards().  Key properties:
//
//   * Deterministic sharding: shard boundaries depend only on
//     (n, grain, threads) — never on runtime scheduling — so kernels that
//     reduce per-shard partial accumulators (linear_backward dweight/dbias,
//     layernorm_backward dgamma/dbeta, l2_norm) produce bit-identical
//     results run-to-run at a fixed thread count.
//   * Serial fallback: threads == 1, a null pool, or n too small for the
//     grain all collapse to plain inline execution with zero overhead.
//   * Nesting safety: when the calling thread is already a ThreadPool
//     worker (e.g. a federated round fanned clients out across the pool),
//     effective_threads() is 1 and the kernel runs serial on that worker
//     instead of deadlocking on the shared queue or oversubscribing.
//
// The library default context is configured from the environment:
//   PHOTON_NUM_THREADS   intra-op threads (default: hardware concurrency)
//   PHOTON_KERNEL_GRAIN  min scalar ops per shard (default: 32768)

#include <cstddef>
#include <functional>

#include "tensor/simd.hpp"

namespace photon {
class ThreadPool;
}

namespace photon::kernels {

class KernelContext {
 public:
  /// Minimum scalar operations a shard must amortize before forking pays.
  static constexpr std::size_t kDefaultGrain = 32768;

  /// Serial context: every kernel runs inline on the caller.
  KernelContext() = default;

  KernelContext(ThreadPool* pool, int threads,
                std::size_t grain = kDefaultGrain);

  /// Shared immutable serial context.
  static const KernelContext& serial();

  int threads() const { return threads_; }
  std::size_t grain() const { return grain_; }

  /// SIMD op table the kernels dispatch through: the process-wide active
  /// variant (CPUID + PHOTON_SIMD, see simd.hpp) unless a specific table was
  /// pinned with set_simd().  All variants are bit-identical, so pinning
  /// only matters for benchmarks and cross-variant tests.
  const simd::Ops& simd() const {
    return simd_ != nullptr ? *simd_ : simd::ops();
  }
  void set_simd(const simd::Ops* ops) { simd_ = ops; }

  /// Threads usable *right now*: 1 when serial, when no pool is attached,
  /// or when the caller is itself a pool worker (nested parallelism).
  int effective_threads() const;

  /// Minimum rows per shard for rows costing ~`row_cost` scalar ops each.
  std::size_t grain_rows(std::size_t row_cost) const;

  /// Number of shards [0, n) splits into given `min_grain` items per shard.
  /// Depends only on (n, min_grain, effective threads) — deterministic.
  int shard_count(std::size_t n, std::size_t min_grain) const;

  using ShardFn = std::function<void(int shard, std::size_t begin,
                                     std::size_t end)>;

  /// Partition [0, n) into shard_count(n, min_grain) contiguous shards and
  /// run fn(shard, begin, end) across the pool; the caller executes the
  /// last shard itself and waits for the rest.  Runs fn(0, 0, n) inline
  /// when only one shard results.
  void parallel_shards(std::size_t n, std::size_t min_grain,
                       const ShardFn& fn) const;

 private:
  ThreadPool* pool_ = nullptr;
  int threads_ = 1;
  std::size_t grain_ = kDefaultGrain;
  const simd::Ops* simd_ = nullptr;
};

/// Mutable library-default context (env-configured on first use).  Legacy
/// kernel signatures without an explicit context route through this.
KernelContext& default_context();

/// Reconfigure the default context's thread count (grain preserved).
/// Call at startup, not while kernels are running.
void set_default_threads(int threads);

/// Reconfigure the default context's grain — minimum scalar ops per shard
/// (threads preserved).  The autotuner's thread-grain knob: safe to move
/// between rounds because shard boundaries only affect work partitioning,
/// never reduction results (the per-shard fold order is fixed).  Call at a
/// quiescent point, not while kernels are running.
void set_default_grain(std::size_t grain);

}  // namespace photon::kernels
