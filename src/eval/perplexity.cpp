#include "eval/perplexity.hpp"

#include <cmath>
#include <stdexcept>

namespace photon {

EvalResult evaluate_perplexity(GptModel& model, const TokenDataset& dataset,
                               int num_batches, int batch_size) {
  if (num_batches <= 0 || batch_size <= 0) {
    throw std::invalid_argument("evaluate_perplexity: bad batch config");
  }
  const int seq = model.config().seq_len;
  EvalResult result;
  double loss_sum = 0.0;
  for (int i = 0; i < num_batches; ++i) {
    const auto offset = static_cast<std::size_t>(i) *
                        static_cast<std::size_t>(batch_size) *
                        static_cast<std::size_t>(seq);
    const Batch b = dataset.batch_at(offset, batch_size, seq);
    loss_sum += model.eval_loss(b.tokens, b.targets, batch_size, seq);
    result.tokens += static_cast<std::uint64_t>(batch_size) * seq;
  }
  result.mean_loss = loss_sum / num_batches;
  result.perplexity = std::exp(result.mean_loss);
  return result;
}

}  // namespace photon
