#pragma once
// Synthetic downstream probe tasks standing in for the paper's in-context
// learning benchmarks (Tables 7-8: ARC, HellaSwag, PIQA, ...).
//
// Real ICL suites need natural-language corpora, so we substitute probe
// tasks over the synthetic grammar that are scored exactly the way LLM
// harnesses score multiple-choice ICL: each option is appended to the
// context and ranked by length-normalized log-likelihood; accuracy is the
// fraction of cases where the true option ranks first.  The claim under
// reproduction is the *scaling shape*: larger Photon models win most
// head-to-head comparisons.
//
// Tasks:
//  * bigram-cloze    — rank the true next token against corpus-plausible
//                      distractors (distribution learning).
//  * induction-copy  — "x y ... x ?" -> y with novel random pairs
//                      (induction heads / in-context copying).
//  * continuation    — rank a true 8-token continuation against shuffled
//                      decoys (multi-token coherence, HellaSwag-style).

#include <cstdint>
#include <string>
#include <vector>

#include "data/corpus.hpp"
#include "nn/model.hpp"
#include "util/rng.hpp"

namespace photon {

struct ProbeConfig {
  int num_cases = 64;
  int num_options = 4;
  std::uint64_t seed = 0x9E0BE;
};

struct ProbeResult {
  std::string task;
  double accuracy = 0.0;
  double random_baseline = 0.0;
  int cases = 0;
};

/// Mean log-likelihood per token of `option` following `context` under
/// `model`.  The sequence is trimmed/padded to the model's seq_len.
double option_log_likelihood(GptModel& model, const std::vector<int>& context,
                             const std::vector<int>& option);

ProbeResult run_bigram_cloze(GptModel& model, const MarkovSource& corpus,
                             const ProbeConfig& config);
ProbeResult run_induction_copy(GptModel& model, const MarkovSource& corpus,
                               const ProbeConfig& config);
ProbeResult run_continuation(GptModel& model, const MarkovSource& corpus,
                             const ProbeConfig& config);

/// All probes, in Tables-7/8 order.
std::vector<ProbeResult> run_all_probes(GptModel& model,
                                        const MarkovSource& corpus,
                                        const ProbeConfig& config);

}  // namespace photon
