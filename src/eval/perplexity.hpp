#pragma once
// Perplexity evaluation (paper §5.1: "Model performance is evaluated using
// perplexity on the full C4 validation set").

#include <cstdint>

#include "data/dataset.hpp"
#include "nn/model.hpp"

namespace photon {

struct EvalResult {
  double mean_loss = 0.0;   // nats / token
  double perplexity = 0.0;  // exp(mean_loss)
  std::uint64_t tokens = 0;
};

/// Evaluate `model` over `num_batches` deterministic windows of `dataset`
/// at the given batch size.  Deterministic so curves are comparable.
EvalResult evaluate_perplexity(GptModel& model, const TokenDataset& dataset,
                               int num_batches, int batch_size);

}  // namespace photon
