#include "eval/probes.hpp"

#include <algorithm>
#include <stdexcept>

#include "data/tokenizer.hpp"

namespace photon {
namespace {

/// Assemble a fixed-length (1, T) sequence ending in `option`, with targets
/// masked to the option positions only.
struct ScoredSequence {
  std::vector<int> tokens;
  std::vector<int> targets;
};

ScoredSequence assemble(const std::vector<int>& context,
                        const std::vector<int>& option, int seq_len) {
  if (static_cast<int>(option.size()) >= seq_len) {
    throw std::invalid_argument("probe: option longer than seq_len");
  }
  ScoredSequence s;
  s.tokens.assign(static_cast<std::size_t>(seq_len), SpecialTokens::kPad);
  s.targets.assign(static_cast<std::size_t>(seq_len), -1);

  // Right-align: [context tail][option]; predictions come from position
  // i predicting token i+1, so targets are set at the positions *before*
  // each option token.
  const int opt_len = static_cast<int>(option.size());
  const int ctx_space = seq_len - opt_len;
  const int ctx_len = std::min<int>(static_cast<int>(context.size()), ctx_space);
  const int ctx_start = ctx_space - ctx_len;
  for (int i = 0; i < ctx_len; ++i) {
    s.tokens[static_cast<std::size_t>(ctx_start + i)] =
        context[context.size() - static_cast<std::size_t>(ctx_len) +
                static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < opt_len; ++i) {
    s.tokens[static_cast<std::size_t>(ctx_space + i)] =
        option[static_cast<std::size_t>(i)];
    s.targets[static_cast<std::size_t>(ctx_space + i - 1)] =
        option[static_cast<std::size_t>(i)];
  }
  return s;
}

int content_token(Rng& rng, int vocab) {
  return SpecialTokens::kFirstContent +
         static_cast<int>(rng.next_below(
             static_cast<std::uint64_t>(vocab - SpecialTokens::kFirstContent)));
}

}  // namespace

double option_log_likelihood(GptModel& model, const std::vector<int>& context,
                             const std::vector<int>& option) {
  const int seq_len = model.config().seq_len;
  const ScoredSequence s = assemble(context, option, seq_len);
  // eval_loss returns mean NLL over unmasked targets; LL = -NLL.
  return -static_cast<double>(model.eval_loss(s.tokens, s.targets, 1, seq_len));
}

ProbeResult run_bigram_cloze(GptModel& model, const MarkovSource& corpus,
                             const ProbeConfig& config) {
  ProbeResult result;
  result.task = "bigram-cloze";
  result.random_baseline = 1.0 / config.num_options;
  Rng rng(hash_combine(config.seed, 0xB16A4ULL));
  const int vocab = model.config().vocab_size;
  int correct = 0;
  for (int c = 0; c < config.num_cases; ++c) {
    std::vector<int> context;
    corpus.generate(rng, static_cast<std::size_t>(model.config().seq_len), context);
    // True continuation: the most likely successor of the final token.
    // Distractors are OTHER legal successors, so the model must rank within
    // the plausible set (fine-grained distribution knowledge), not merely
    // reject impossible tokens.
    const int state = context.back();
    const auto row = corpus.transition_row(state);
    const int truth = static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin());
    std::vector<std::pair<double, int>> legal;
    for (int t = 0; t < vocab; ++t) {
      if (t != truth && row[static_cast<std::size_t>(t)] > 0.0) {
        legal.emplace_back(row[static_cast<std::size_t>(t)], t);
      }
    }
    std::sort(legal.begin(), legal.end());  // least likely first
    std::vector<std::vector<int>> options{{truth}};
    for (const auto& [p, t] : legal) {
      if (static_cast<int>(options.size()) >= config.num_options) break;
      options.push_back({t});
    }
    while (static_cast<int>(options.size()) < config.num_options) {
      const int distractor = content_token(rng, vocab);
      if (row[static_cast<std::size_t>(distractor)] == 0.0) {
        options.push_back({distractor});
      }
    }
    double best = -1e30;
    std::size_t best_idx = 0;
    for (std::size_t o = 0; o < options.size(); ++o) {
      const double ll = option_log_likelihood(model, context, options[o]);
      if (ll > best) {
        best = ll;
        best_idx = o;
      }
    }
    if (best_idx == 0) ++correct;
  }
  result.cases = config.num_cases;
  result.accuracy = static_cast<double>(correct) / config.num_cases;
  return result;
}

ProbeResult run_induction_copy(GptModel& model, const MarkovSource& corpus,
                               const ProbeConfig& config) {
  ProbeResult result;
  result.task = "induction-copy";
  result.random_baseline = 1.0 / config.num_options;
  Rng rng(hash_combine(config.seed, 0x1D0C7ULL));
  const int vocab = model.config().vocab_size;
  const int seq_len = model.config().seq_len;
  int correct = 0;
  for (int c = 0; c < config.num_cases; ++c) {
    // Context: corpus text with the pair (x, y) planted several times,
    // ending with a final x; the answer is y.
    const int x = content_token(rng, vocab);
    int y = content_token(rng, vocab);
    while (y == x) y = content_token(rng, vocab);
    std::vector<int> context;
    corpus.generate(rng, static_cast<std::size_t>(seq_len), context);
    // Plant the pair every 8 tokens in the second half of the context.
    for (std::size_t pos = context.size() / 2; pos + 1 < context.size();
         pos += 8) {
      context[pos] = x;
      context[pos + 1] = y;
    }
    context.back() = x;

    std::vector<std::vector<int>> options{{y}};
    while (static_cast<int>(options.size()) < config.num_options) {
      const int distractor = content_token(rng, vocab);
      if (distractor != y && distractor != x) options.push_back({distractor});
    }
    double best = -1e30;
    std::size_t best_idx = 0;
    for (std::size_t o = 0; o < options.size(); ++o) {
      const double ll = option_log_likelihood(model, context, options[o]);
      if (ll > best) {
        best = ll;
        best_idx = o;
      }
    }
    if (best_idx == 0) ++correct;
  }
  result.cases = config.num_cases;
  result.accuracy = static_cast<double>(correct) / config.num_cases;
  return result;
}

ProbeResult run_continuation(GptModel& model, const MarkovSource& corpus,
                             const ProbeConfig& config) {
  ProbeResult result;
  result.task = "continuation";
  result.random_baseline = 1.0 / config.num_options;
  Rng rng(hash_combine(config.seed, 0xC0471ULL));
  const int seq_len = model.config().seq_len;
  constexpr int kOptLen = 8;
  int correct = 0;
  for (int c = 0; c < config.num_cases; ++c) {
    // Draw a contiguous corpus passage; the tail is the true continuation.
    std::vector<int> passage;
    corpus.generate(rng, static_cast<std::size_t>(seq_len + kOptLen), passage);
    std::vector<int> context(passage.begin(),
                             passage.end() - static_cast<std::ptrdiff_t>(kOptLen));
    std::vector<int> truth(passage.end() - static_cast<std::ptrdiff_t>(kOptLen),
                           passage.end());
    std::vector<std::vector<int>> options{truth};
    // Decoys: the true continuation with two positions replaced by random
    // content tokens (HellaSwag-style endings that keep most surface
    // statistics but break a couple of transitions).
    const int vocab = model.config().vocab_size;
    while (static_cast<int>(options.size()) < config.num_options) {
      std::vector<int> decoy = truth;
      for (int swaps = 0; swaps < 2; ++swaps) {
        const std::size_t pos = 1 + static_cast<std::size_t>(
                                        rng.next_below(decoy.size() - 1));
        decoy[pos] = content_token(rng, vocab);
      }
      if (decoy != truth) options.push_back(std::move(decoy));
    }
    double best = -1e30;
    std::size_t best_idx = 0;
    for (std::size_t o = 0; o < options.size(); ++o) {
      const double ll = option_log_likelihood(model, context, options[o]);
      if (ll > best) {
        best = ll;
        best_idx = o;
      }
    }
    if (best_idx == 0) ++correct;
  }
  result.cases = config.num_cases;
  result.accuracy = static_cast<double>(correct) / config.num_cases;
  return result;
}

std::vector<ProbeResult> run_all_probes(GptModel& model,
                                        const MarkovSource& corpus,
                                        const ProbeConfig& config) {
  return {run_bigram_cloze(model, corpus, config),
          run_induction_copy(model, corpus, config),
          run_continuation(model, corpus, config)};
}

}  // namespace photon
