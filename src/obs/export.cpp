#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace photon::obs {

namespace {

/// Shortest-round-trip-safe, deterministic double formatting: %.17g prints
/// identical bytes for identical values and strtod recovers them exactly.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Coarse category for trace viewers' color grouping.
const char* span_category(SpanKind kind) {
  switch (kind) {
    case SpanKind::kBroadcast:
    case SpanKind::kUpdateReturn:
    case SpanKind::kEncode:
    case SpanKind::kDecode:
    case SpanKind::kCollective:
    case SpanKind::kDequantAccum: return "comm";
    case SpanKind::kLocalTrain:
    case SpanKind::kLocalStep: return "compute";
    case SpanKind::kServerOpt:
    case SpanKind::kCheckpoint:
    case SpanKind::kEval:
    case SpanKind::kBufferDrain:
    case SpanKind::kRound: return "server";
    case SpanKind::kRetryWait:
    case SpanKind::kStragglerCut:
    case SpanKind::kCrash:
    case SpanKind::kLinkFail:
    case SpanKind::kAdmissionDefer:
    case SpanKind::kClientArrive:
    case SpanKind::kClientLeave: return "fault";
    case SpanKind::kKeyExchange:
    case SpanKind::kShareRecovery: return "privacy";
  }
  return "?";
}

void append_event_jsonl(std::string& out, const TraceEvent& e,
                        const JsonlOptions& options) {
  out += "{\"kind\":\"";
  out += span_name(e.kind);
  out += "\",\"round\":";
  out += std::to_string(e.round);
  out += ",\"actor\":";
  out += std::to_string(e.actor);
  out += ",\"detail\":";
  out += std::to_string(e.detail);
  out += ",\"sim_begin\":";
  out += fmt_double(e.sim_begin);
  out += ",\"sim_end\":";
  out += fmt_double(e.sim_end);
  if (options.include_real) {
    out += ",\"real_ns\":";
    out += std::to_string(e.real_ns);
  }
  out += "}\n";
}

}  // namespace

std::string to_jsonl(const std::vector<TraceEvent>& events,
                     const JsonlOptions& options) {
  std::string out;
  out.reserve(events.size() * 96);
  for (const TraceEvent& e : events) append_event_jsonl(out, e, options);
  return out;
}

std::vector<TraceEvent> from_jsonl(std::string_view text) {
  std::vector<TraceEvent> events;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const json::Value v = json::parse(line);
    TraceEvent e;
    e.kind = span_kind_from_name(v.at("kind").as_string());
    e.round = static_cast<std::uint32_t>(v.at("round").as_number());
    e.actor = static_cast<std::int32_t>(v.at("actor").as_number());
    e.detail = static_cast<std::int32_t>(v.at("detail").as_number());
    e.sim_begin = v.at("sim_begin").as_number();
    e.sim_end = v.at("sim_end").as_number();
    if (v.contains("real_ns")) {
      e.real_ns = static_cast<std::uint64_t>(v.at("real_ns").as_number());
    }
    events.push_back(e);
  }
  return events;
}

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    const double ts_us = e.sim_begin * 1e6;
    const double dur_us = (e.sim_end - e.sim_begin) * 1e6;
    // Track rows: one per client, aggregator work on tid 0.
    const int tid = e.actor >= 0 ? e.actor + 1 : 0;
    out += "\n{\"name\":\"";
    out += span_name(e.kind);
    out += "\",\"cat\":\"";
    out += span_category(e.kind);
    out += "\",\"pid\":0,\"tid\":";
    out += std::to_string(tid);
    out += ",\"ts\":";
    out += fmt_double(ts_us);
    if (e.sim_begin == e.sim_end) {
      out += ",\"ph\":\"i\",\"s\":\"t\"";
    } else {
      out += ",\"ph\":\"X\",\"dur\":";
      out += fmt_double(dur_us);
    }
    out += ",\"args\":{\"round\":";
    out += std::to_string(e.round);
    out += ",\"detail\":";
    out += std::to_string(e.detail);
    out += ",\"real_ns\":";
    out += std::to_string(e.real_ns);
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

std::vector<RoundAttribution> attribute_rounds(
    const std::vector<TraceEvent>& events) {
  struct Accum {
    RoundAttribution attr;
    // Per-client critical-path seconds (bcast + train + update + retry),
    // keyed by actor id.  std::map keeps iteration deterministic.
    std::map<std::int32_t, double> client_s;
  };
  std::map<std::uint32_t, Accum> rounds;
  for (const TraceEvent& e : events) {
    Accum& acc = rounds[e.round];
    RoundAttribution& row = acc.attr;
    const double width = e.sim_end - e.sim_begin;
    bool client_path = false;
    switch (e.kind) {
      case SpanKind::kRound: row.round_s += width; break;
      case SpanKind::kBroadcast:
        row.broadcast_s += width;
        client_path = true;
        break;
      case SpanKind::kLocalTrain:
        row.local_train_s += width;
        client_path = true;
        break;
      case SpanKind::kUpdateReturn:
        row.update_return_s += width;
        client_path = true;
        break;
      case SpanKind::kCollective: row.collective_s += width; break;
      case SpanKind::kServerOpt: row.server_opt_s += width; break;
      case SpanKind::kCheckpoint: row.checkpoint_s += width; break;
      case SpanKind::kRetryWait:
        row.retry_wait_s += width;
        client_path = true;
        break;
      case SpanKind::kEncode: row.encode_s += width; break;
      case SpanKind::kDecode: row.decode_s += width; break;
      case SpanKind::kDequantAccum: row.dequant_accum_s += width; break;
      case SpanKind::kBufferDrain: row.buffer_drain_s += width; break;
      case SpanKind::kEval: row.eval_s += width; break;
      case SpanKind::kStragglerCut: ++row.straggler_cuts; break;
      case SpanKind::kCrash: ++row.crashes; break;
      case SpanKind::kLinkFail: ++row.link_fails; break;
      case SpanKind::kAdmissionDefer: ++row.admission_defers; break;
      case SpanKind::kClientArrive: ++row.client_arrivals; break;
      case SpanKind::kClientLeave: ++row.client_departures; break;
      case SpanKind::kKeyExchange:
        row.key_exchange_s += width;
        client_path = true;
        break;
      case SpanKind::kShareRecovery: ++row.share_recoveries; break;
      case SpanKind::kLocalStep: break;
    }
    if (client_path && e.actor >= 0) acc.client_s[e.actor] += width;
  }
  std::vector<RoundAttribution> out;
  out.reserve(rounds.size());
  for (auto& [round, acc] : rounds) {
    acc.attr.round = round;
    acc.attr.clients = static_cast<int>(acc.client_s.size());
    if (!acc.client_s.empty()) {
      std::vector<double> per_client;
      per_client.reserve(acc.client_s.size());
      for (const auto& [actor, s] : acc.client_s) per_client.push_back(s);
      std::sort(per_client.begin(), per_client.end());
      acc.attr.slowest_client_s = per_client.back();
      acc.attr.median_client_s = per_client[per_client.size() / 2];
    }
    out.push_back(acc.attr);
  }
  return out;
}

std::string render_round_table(const std::vector<TraceEvent>& events) {
  TablePrinter table({"round", "sim_s", "bcast_s", "train_s", "update_s",
                      "collective_s", "retry_s", "cuts", "crashes",
                      "link_fails"});
  for (const RoundAttribution& row : attribute_rounds(events)) {
    table.add_row({std::to_string(row.round),
                   TablePrinter::fmt(row.round_s, 4),
                   TablePrinter::fmt(row.broadcast_s, 4),
                   TablePrinter::fmt(row.local_train_s, 4),
                   TablePrinter::fmt(row.update_return_s, 4),
                   TablePrinter::fmt(row.collective_s, 4),
                   TablePrinter::fmt(row.retry_wait_s, 4),
                   std::to_string(row.straggler_cuts),
                   std::to_string(row.crashes),
                   std::to_string(row.link_fails)});
  }
  return table.render();
}

std::string render_metrics_table(const MetricsRegistry& registry) {
  TablePrinter table({"metric", "type", "value", "count", "min", "max"});
  for (const std::string& name : registry.counter_names()) {
    table.add_row({name, "counter",
                   std::to_string(registry.counter_value(name)), "", "", ""});
  }
  for (const std::string& name : registry.gauge_names()) {
    table.add_row({name, "gauge", TablePrinter::fmt(registry.gauge_value(name), 4),
                   "", "", ""});
  }
  for (const std::string& name : registry.histogram_names()) {
    const HistogramData h = registry.histogram_snapshot(name);
    table.add_row({name, "hist", TablePrinter::fmt(h.mean(), 4),
                   std::to_string(h.total),
                   h.total > 0 ? TablePrinter::fmt(h.min, 4) : "",
                   h.total > 0 ? TablePrinter::fmt(h.max, 4) : ""});
  }
  return table.render();
}

}  // namespace photon::obs
