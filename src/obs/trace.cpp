#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <tuple>

namespace photon::obs {

namespace {

constexpr const char* kSpanNames[kNumSpanKinds] = {
    "round",         "broadcast",  "local_train", "local_step",
    "encode",        "decode",     "collective",  "server_opt",
    "checkpoint",    "retry_wait", "update_return", "eval",
    "straggler_cut", "crash",      "link_fail",   "dequant_accum",
    "buffer_drain",  "admission_defer", "client_arrive", "client_leave",
    "key_exchange",  "share_recovery",
};

/// One slot per (thread, tracer) pairing.  A thread that alternates
/// between tracers re-registers (cheap, cold); tracer ids are never
/// reused, so a stale slot can never alias a new tracer.
struct ThreadSlot {
  std::uint64_t owner = 0;
  void* ring = nullptr;
};
thread_local ThreadSlot t_slot;

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

const char* span_name(SpanKind kind) {
  const auto i = static_cast<int>(kind);
  if (i < 0 || i >= kNumSpanKinds) return "?";
  return kSpanNames[i];
}

SpanKind span_kind_from_name(std::string_view name) {
  for (int i = 0; i < kNumSpanKinds; ++i) {
    if (name == kSpanNames[i]) return static_cast<SpanKind>(i);
  }
  throw std::invalid_argument("span_kind_from_name: unknown span name '" +
                              std::string(name) + "'");
}

bool trace_event_before(const TraceEvent& a, const TraceEvent& b) {
  return std::tuple(a.round, a.sim_begin, a.actor, static_cast<int>(a.kind),
                    a.detail, a.sim_end) <
         std::tuple(b.round, b.sim_begin, b.actor, static_cast<int>(b.kind),
                    b.detail, b.sim_end);
}

Tracer::Tracer(std::size_t ring_capacity)
    : capacity_(std::max<std::size_t>(1, ring_capacity)),
      id_(next_tracer_id()) {}

Tracer::~Tracer() = default;

void Tracer::set_sample_every(std::uint32_t n) {
  if (n == 0) throw std::invalid_argument("Tracer: sample_every must be >= 1");
  sample_every_ = n;
}

Tracer::Ring& Tracer::local_ring() {
  if (t_slot.owner == id_) return *static_cast<Ring*>(t_slot.ring);
  std::scoped_lock lock(rings_mu_);
  rings_.push_back(std::make_unique<Ring>(capacity_));
  t_slot = {id_, rings_.back().get()};
  return *rings_.back();
}

void Tracer::record(const TraceEvent& event) {
  if constexpr (!compiled_in()) {
    (void)event;
    return;
  }
  if (!sampled(event.round)) return;
  Ring& ring = local_ring();
  const std::size_t idx = ring.count.load(std::memory_order_relaxed);
  if (idx >= ring.slots.size()) {
    ring.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring.slots[idx] = event;
  ring.count.store(idx + 1, std::memory_order_release);
}

std::vector<TraceEvent> Tracer::drain() {
  std::vector<TraceEvent> out;
  {
    std::scoped_lock lock(rings_mu_);
    for (auto& ring : rings_) {
      const std::size_t n = ring->count.load(std::memory_order_acquire);
      out.insert(out.end(), ring->slots.begin(),
                 ring->slots.begin() + static_cast<std::ptrdiff_t>(n));
      ring->count.store(0, std::memory_order_relaxed);
    }
  }
  std::sort(out.begin(), out.end(), trace_event_before);
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::scoped_lock lock(rings_mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

Tracer* env_tracer() {
  static Tracer* tracer = []() -> Tracer* {
    const char* env = std::getenv("PHOTON_TRACE");
    if (env == nullptr) return nullptr;
    const std::string_view v(env);
    if (v != "1" && v != "on" && v != "true") return nullptr;
    static Tracer t;
    return &t;
  }();
  return tracer;
}

}  // namespace photon::obs
