#include "obs/json.hpp"

#include <cstdlib>
#include <stdexcept>

namespace photon::obs::json {

bool Value::as_bool() const {
  if (type_ != Type::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (type_ != Type::kArray) throw std::runtime_error("json: not an array");
  return array_;
}

const std::map<std::string, Value>& Value::as_object() const {
  if (type_ != Type::kObject) throw std::runtime_error("json: not an object");
  return object_;
}

const Value& Value::at(const std::string& key) const {
  return as_object().at(key);
}

bool Value::contains(const std::string& key) const {
  return as_object().count(key) > 0;
}

Value Value::make_bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::make_object(std::map<std::string, Value> members) {
  Value v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value::make_string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Value::make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Value::make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value::make_null();
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::map<std::string, Value> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value::make_object(std::move(members));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value::make_array(std::move(items));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // Exporters only emit ASCII escapes; encode BMP code points UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Value::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace photon::obs::json
