#include "obs/metrics.hpp"

#include <cmath>

namespace photon::obs {

int HistogramData::bucket_of(double value) {
  if (value == 0.0) return 0;
  if (value < 0.0 || std::isnan(value)) return 1;
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  exp -= 1;                 // floor(log2(value)) for positive finite values
  if (exp < kMinExp) exp = kMinExp;
  if (exp > kMaxExp) exp = kMaxExp;
  return 2 + (exp - kMinExp);
}

void HistogramData::observe(double value) {
  counts[static_cast<std::size_t>(bucket_of(value))] += 1;
  total += 1;
  sum += value;
  if (value < min) min = value;
  if (value > max) max = value;
}

void HistogramData::merge(const HistogramData& other) {
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  total += other.total;
  sum += other.sum;
  if (other.min < min) min = other.min;
  if (other.max > max) max = other.max;
}

void Histogram::observe(double value) {
  const auto bucket = static_cast<std::size_t>(HistogramData::bucket_of(value));
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  double cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

HistogramData Histogram::snapshot() const {
  HistogramData d;
  for (std::size_t i = 0; i < d.counts.size(); ++i) {
    d.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  d.total = total_.load(std::memory_order_relaxed);
  d.sum = sum_.load(std::memory_order_relaxed);
  d.min = min_.load(std::memory_order_relaxed);
  d.max = max_.load(std::memory_order_relaxed);
  return d;
}

CounterHandle MetricsRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& cell = counters_[name];
  if (cell == nullptr) cell = std::make_unique<std::atomic<std::uint64_t>>(0);
  return CounterHandle{cell.get()};
}

GaugeHandle MetricsRegistry::gauge(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& cell = gauges_[name];
  if (cell == nullptr) cell = std::make_unique<std::atomic<double>>(0.0);
  return GaugeHandle{cell.get()};
}

HistogramHandle MetricsRegistry::histogram(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& hist = histograms_[name];
  if (hist == nullptr) hist = std::make_unique<Histogram>();
  return HistogramHandle{hist.get()};
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::scoped_lock lock(mu_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second->load(std::memory_order_relaxed)
                               : 0;
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  std::scoped_lock lock(mu_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second->load(std::memory_order_relaxed)
                             : 0.0;
}

HistogramData MetricsRegistry::histogram_snapshot(
    const std::string& name) const {
  std::scoped_lock lock(mu_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second->snapshot() : HistogramData{};
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) names.push_back(name);
  return names;
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mu_);
  for (auto& [name, cell] : counters_) {
    cell->store(0, std::memory_order_relaxed);
  }
  for (auto& [name, cell] : gauges_) {
    cell->store(0.0, std::memory_order_relaxed);
  }
  for (auto& [name, hist] : histograms_) {
    hist->reset();
  }
}

}  // namespace photon::obs
