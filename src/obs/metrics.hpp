#pragma once
// Named metrics for the round path: counters, gauges, and histograms
// (DESIGN.md §9).
//
// Registration (name -> handle) is a cold-path mutex lookup done once at
// wiring time; the handle is then a raw pointer to the metric's storage,
// so a hot-path increment is a single relaxed atomic add with no lock, no
// hash, and no string.  Cells live in node-stable containers, so handles
// stay valid for the registry's lifetime.
//
// Histograms bucket by power-of-two magnitude (plus zero/negative buckets)
// and exist in two forms: the concurrent Histogram behind HistogramHandle,
// and the plain-value HistogramData snapshot whose merge() is associative
// and commutative (property-tested) — N per-thread histograms merged in
// any order equal the serial observation stream.

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace photon::obs {

/// Plain-value histogram: log2 magnitude buckets over |value|, with
/// dedicated buckets for zero and negative values.  Mergeable.
struct HistogramData {
  /// bucket 0: v == 0; bucket 1: v < 0; buckets 2..: floor(log2|v|)
  /// clamped into [kMinExp, kMaxExp].
  static constexpr int kMinExp = -32;
  static constexpr int kMaxExp = 31;
  static constexpr int kNumBuckets = 2 + (kMaxExp - kMinExp + 1);

  std::array<std::uint64_t, kNumBuckets> counts{};
  std::uint64_t total = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  static int bucket_of(double value);

  void observe(double value);

  /// Associative + commutative combine; (a.merge(b)).merge(c) equals
  /// a.merge(b.merge(c)) equals any permutation, bit-exact for counts and
  /// within one rounding of `sum` per merge order (counts/min/max exact).
  void merge(const HistogramData& other);

  double mean() const { return total > 0 ? sum / static_cast<double>(total) : 0.0; }

  bool operator==(const HistogramData& other) const {
    return counts == other.counts && total == other.total &&
           sum == other.sum && min == other.min && max == other.max;
  }
};

/// Concurrent histogram: relaxed atomic buckets, CAS-updated min/max.
class Histogram {
 public:
  void observe(double value);
  HistogramData snapshot() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, HistogramData::kNumBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Typed handles: trivially copyable, validity = non-null, hot ops inline.
struct CounterHandle {
  std::atomic<std::uint64_t>* cell = nullptr;
  void add(std::uint64_t delta = 1) const {
    if (cell != nullptr) cell->fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return cell != nullptr ? cell->load(std::memory_order_relaxed) : 0;
  }
  explicit operator bool() const { return cell != nullptr; }
};

struct GaugeHandle {
  std::atomic<double>* cell = nullptr;
  void set(double value) const {
    if (cell != nullptr) cell->store(value, std::memory_order_relaxed);
  }
  double value() const {
    return cell != nullptr ? cell->load(std::memory_order_relaxed) : 0.0;
  }
  explicit operator bool() const { return cell != nullptr; }
};

struct HistogramHandle {
  Histogram* hist = nullptr;
  void observe(double value) const {
    if (hist != nullptr) hist->observe(value);
  }
  explicit operator bool() const { return hist != nullptr; }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; handles remain valid for the registry's lifetime.
  CounterHandle counter(const std::string& name);
  GaugeHandle gauge(const std::string& name);
  HistogramHandle histogram(const std::string& name);

  /// Read-side queries (0 / empty snapshot when unregistered).
  std::uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  HistogramData histogram_snapshot(const std::string& name) const;

  /// All registered names, sorted (deterministic iteration for exporters).
  std::vector<std::string> counter_names() const;
  std::vector<std::string> gauge_names() const;
  std::vector<std::string> histogram_names() const;

  /// Zero every counter/gauge and clear every histogram; names and handles
  /// stay registered and valid.
  void reset();

 private:
  mutable std::mutex mu_;  // registration + read-side; never on the hot path
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>> counters_;
  std::map<std::string, std::unique_ptr<std::atomic<double>>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace photon::obs
