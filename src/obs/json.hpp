#pragma once
// Minimal JSON value + recursive-descent parser.
//
// Exists so the exporter tests can prove "emits valid JSON" by actually
// parsing the output back (and so the JSONL importer can round-trip every
// event field) without adding a third-party dependency.  Supports the full
// JSON grammar the exporters emit: objects, arrays, strings with escapes,
// numbers, booleans, null.  Not a general-purpose library: no comments, no
// trailing commas, throws std::runtime_error with a byte offset on any
// malformed input.

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace photon::obs::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::map<std::string, Value>& as_object() const;

  /// Object member access; throws std::out_of_range on a missing key.
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::map<std::string, Value> members);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parse one complete JSON document; trailing non-whitespace is an error.
Value parse(std::string_view text);

}  // namespace photon::obs::json
