#pragma once
// Trace and metrics exporters (DESIGN.md §9).
//
// Three output formats from one drained event stream:
//
//   * JSONL — one JSON object per event, one event per line.  The
//     deterministic export (default) emits only sim-clock fields, so the
//     byte stream is identical for identical (seed, config) at any thread
//     count; include_real adds the nondeterministic steady-clock duration.
//     from_jsonl() round-trips every exported field (property-tested).
//   * Chrome trace_event — a {"traceEvents": [...]} document loadable in
//     chrome://tracing and Perfetto.  Spans are complete ("ph":"X")
//     events on the sim-time axis (microseconds); instant decisions
//     (straggler cut, crash, link failure) are "ph":"i" marks.
//   * Per-round table — human-readable sim-time attribution per phase via
//     util/table, one row per round.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace photon::obs {

struct JsonlOptions {
  /// Emit the steady-clock real_ns field.  Off by default: real durations
  /// are nondeterministic and would break byte-identical replays.
  bool include_real = false;
};

/// Serialize events to JSONL (events are emitted in the given order; pass
/// a drained stream for the deterministic ordering guarantee).
std::string to_jsonl(const std::vector<TraceEvent>& events,
                     const JsonlOptions& options = {});

/// Parse a JSONL stream back into events; inverse of to_jsonl for every
/// field it emitted (real_ns defaults to 0 when absent).  Throws
/// std::runtime_error on malformed lines.
std::vector<TraceEvent> from_jsonl(std::string_view text);

/// Chrome trace_event JSON document (load in chrome://tracing / Perfetto).
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

/// Per-round sim-time attribution parsed back from a drained (or
/// from_jsonl-imported) event stream.  Every field derives from the
/// deterministic span fields only (never real_ns), so attribution of the
/// same federation is byte-identical at any thread count — this is the
/// contract the trace-driven autotuner (src/tune) relies on.
struct RoundAttribution {
  std::uint32_t round = 0;
  double round_s = 0.0;         ///< kRound span width (0 for async drains)
  double broadcast_s = 0.0;     ///< summed over clients
  double local_train_s = 0.0;
  double update_return_s = 0.0;
  double collective_s = 0.0;
  double server_opt_s = 0.0;
  double checkpoint_s = 0.0;
  double retry_wait_s = 0.0;
  double encode_s = 0.0;
  double decode_s = 0.0;
  double dequant_accum_s = 0.0;
  double buffer_drain_s = 0.0;  ///< async engine drain window
  double eval_s = 0.0;
  double key_exchange_s = 0.0;  ///< secagg simulated key-agreement rounds
  int share_recoveries = 0;     ///< dropped members reconstructed via Shamir
  /// Per-client critical path: sum of that client's broadcast + local_train
  /// + update_return + retry_wait spans; max / median over participating
  /// clients.  The ratio is the straggler-tail signal.
  double slowest_client_s = 0.0;
  double median_client_s = 0.0;
  int clients = 0;              ///< distinct client actors seen this round
  int straggler_cuts = 0;
  int crashes = 0;
  int link_fails = 0;
  int admission_defers = 0;
  int client_arrivals = 0;
  int client_departures = 0;
};

/// Parse a drained event stream into per-round attributions, ordered by
/// ascending round number.  Pure function of the deterministic span fields.
std::vector<RoundAttribution> attribute_rounds(
    const std::vector<TraceEvent>& events);

/// Aligned per-round table: sim seconds attributed to each phase, plus
/// fault-event counts.  One row per round present in `events`.  Rendered
/// from attribute_rounds().
std::string render_round_table(const std::vector<TraceEvent>& events);

/// Aligned dump of every registered counter, gauge, and histogram summary.
std::string render_metrics_table(const MetricsRegistry& registry);

}  // namespace photon::obs
