#pragma once
// Trace and metrics exporters (DESIGN.md §9).
//
// Three output formats from one drained event stream:
//
//   * JSONL — one JSON object per event, one event per line.  The
//     deterministic export (default) emits only sim-clock fields, so the
//     byte stream is identical for identical (seed, config) at any thread
//     count; include_real adds the nondeterministic steady-clock duration.
//     from_jsonl() round-trips every exported field (property-tested).
//   * Chrome trace_event — a {"traceEvents": [...]} document loadable in
//     chrome://tracing and Perfetto.  Spans are complete ("ph":"X")
//     events on the sim-time axis (microseconds); instant decisions
//     (straggler cut, crash, link failure) are "ph":"i" marks.
//   * Per-round table — human-readable sim-time attribution per phase via
//     util/table, one row per round.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace photon::obs {

struct JsonlOptions {
  /// Emit the steady-clock real_ns field.  Off by default: real durations
  /// are nondeterministic and would break byte-identical replays.
  bool include_real = false;
};

/// Serialize events to JSONL (events are emitted in the given order; pass
/// a drained stream for the deterministic ordering guarantee).
std::string to_jsonl(const std::vector<TraceEvent>& events,
                     const JsonlOptions& options = {});

/// Parse a JSONL stream back into events; inverse of to_jsonl for every
/// field it emitted (real_ns defaults to 0 when absent).  Throws
/// std::runtime_error on malformed lines.
std::vector<TraceEvent> from_jsonl(std::string_view text);

/// Chrome trace_event JSON document (load in chrome://tracing / Perfetto).
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

/// Aligned per-round table: sim seconds attributed to each phase, plus
/// fault-event counts.  One row per round present in `events`.
std::string render_round_table(const std::vector<TraceEvent>& events);

/// Aligned dump of every registered counter, gauge, and histogram summary.
std::string render_metrics_table(const MetricsRegistry& registry);

}  // namespace photon::obs
