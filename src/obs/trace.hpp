#pragma once
// Low-overhead tracing spans for the federated round path (DESIGN.md §9).
//
// A Tracer produces nested spans over two clocks at once:
//
//   * sim clock — the deterministic simulated-time coordinate every span's
//     begin/end timestamps live in.  Sim timestamps are pure functions of
//     (seed, config): link transfer/backoff math, straggle factors, and the
//     cost model — never wall clock or thread schedule — so the drained
//     event stream is bit-identical at any thread count.
//   * real clock — an optional steady-clock duration (`real_ns`) recorded
//     alongside, for profiling actual CPU cost.  Real durations are
//     nondeterministic and are therefore excluded from deterministic
//     exports by default (see obs/export.hpp).
//
// Hot-path contract: record() appends to a per-thread ring buffer owned by
// the tracer — registration of a new thread takes a mutex once, every
// subsequent record is a single-writer array store plus one release store
// of the ring's count.  No locks, no allocation (past ring creation), no
// contention between pool workers.  drain() merges all rings at a
// quiescent point (between rounds; callers must not race it against
// record) and sorts by the deterministic event identity.
//
// Cost when off: a compile-time PHOTON_TRACE=OFF build (see the top-level
// CMake option) turns Tracer::compiled_in() into a constant false so every
// instrumentation site folds to nothing; at runtime, a null tracer pointer
// costs one branch and a disabled tracer one relaxed atomic load.  A bench
// guard (bench/bench_obs_overhead) verifies the disabled cost stays within
// noise of the un-instrumented round path.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#ifndef PHOTON_TRACE_ENABLED
#define PHOTON_TRACE_ENABLED 1
#endif

namespace photon::obs {

/// Span taxonomy of the round path.  Width spans cover a sim-time interval;
/// instant events (sim_begin == sim_end) mark decisions (straggler cut,
/// crash, link failure) or zero-sim-width work measured in real time only
/// (encode/decode).
enum class SpanKind : std::uint8_t {
  kRound = 0,        // one federated round, wall to wall
  kBroadcast,        // Agg -> client model broadcast (transfer + retries)
  kLocalTrain,       // client's tau local steps
  kLocalStep,        // one local optimizer step
  kEncode,           // wire serialization of one transmit attempt
  kDecode,           // wire deserialization of one transmit attempt
  kCollective,       // PS/AR/RAR aggregation collective
  kServerOpt,        // ServerOpt::apply on the global model
  kCheckpoint,       // checkpoint save + journal commit
  kRetryWait,        // link retry backoff interval
  kUpdateReturn,     // client -> Agg pseudo-gradient return
  kEval,             // held-out evaluation of the global model
  kStragglerCut,     // client cut by the round deadline (width = sim time
                     // the round still charged to the cut client)
  kCrash,            // instant: client crashed mid-round
  kLinkFail,         // instant: transmit gave up (attempts/deadline)
  kDequantAccum,     // streamed dequantize+accumulate of one wire chunk,
                     // pipelined inside the update-return transfer window
  kBufferDrain,      // async engine: one staleness-weighted server step over
                     // a full FedBuff buffer (width = first dispatch to the
                     // buffer_goal'th accepted arrival)
  kAdmissionDefer,   // instant: admission control told a client to back off
                     // (in-flight cap reached); detail = consecutive defers
  kClientArrive,     // instant: elastic membership — client joined mid-run
  kClientLeave,      // instant: elastic membership — client left permanently
  kKeyExchange,      // secagg: one member's simulated key-agreement rounds
                     // (roster download + share upload); detail = cohort size
  kShareRecovery,    // instant: Shamir reconstruction of one dropped
                     // member's secret; detail = survivor count
};

/// Stable lower_snake name used by every exporter ("round", "retry_wait"...).
const char* span_name(SpanKind kind);

/// Inverse of span_name; throws std::invalid_argument on unknown names.
SpanKind span_kind_from_name(std::string_view name);

/// Number of distinct SpanKind values (for iteration / histograms).
inline constexpr int kNumSpanKinds = 22;

struct TraceEvent {
  SpanKind kind = SpanKind::kRound;
  std::uint32_t round = 0;
  /// Client id the span belongs to; kAggregatorActor for server-side work.
  std::int32_t actor = -1;
  /// Kind-specific detail: local step index, transmit attempt, cohort
  /// attempt, or -1 when unused.
  std::int32_t detail = -1;
  double sim_begin = 0.0;
  double sim_end = 0.0;
  /// Steady-clock duration; 0 when not measured.  Nondeterministic — never
  /// part of the deterministic export or the sort identity.
  std::uint64_t real_ns = 0;
};

inline constexpr std::int32_t kAggregatorActor = -1;

/// Deterministic total order on the fields that identify an event.  Ties
/// can only occur between events whose deterministic fields all coincide,
/// so the drained stream is byte-stable at any thread count.
bool trace_event_before(const TraceEvent& a, const TraceEvent& b);

class Tracer {
 public:
  /// Events each thread's ring holds before dropping (drops are counted,
  /// never silent).  Default comfortably holds a multi-round soak.
  static constexpr std::size_t kDefaultRingCapacity = 1 << 16;

  explicit Tracer(std::size_t ring_capacity = kDefaultRingCapacity);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// False in a PHOTON_TRACE=OFF build: every call site folds away.
  static constexpr bool compiled_in() { return PHOTON_TRACE_ENABLED != 0; }

  bool enabled() const {
    if constexpr (!compiled_in()) return false;
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Runtime sampling knob: keep only rounds where round % n == 0 (n >= 1).
  /// Deterministic — a pure function of the round number.
  void set_sample_every(std::uint32_t n);
  std::uint32_t sample_every() const { return sample_every_; }

  /// True when spans of `round` should be recorded under the sampling knob.
  bool sampled(std::uint32_t round) const {
    return enabled() && round % sample_every_ == 0;
  }

  /// Append one event to the calling thread's ring.  Lock-free after the
  /// thread's first record.  No-op when disabled or the round is sampled
  /// out.
  void record(const TraceEvent& event);

  /// Merge every thread ring into one deterministically ordered stream and
  /// reset the rings.  Must run at a quiescent point (no concurrent
  /// record) — e.g. between rounds, after parallel_for has joined.
  std::vector<TraceEvent> drain();

  /// Events dropped because a ring filled (cumulative; 0 in healthy runs).
  std::uint64_t dropped() const;

 private:
  struct Ring {
    explicit Ring(std::size_t capacity) : slots(capacity) {}
    std::vector<TraceEvent> slots;
    std::atomic<std::size_t> count{0};   // published with release
    std::atomic<std::uint64_t> dropped{0};
  };

  Ring& local_ring();

  const std::size_t capacity_;
  const std::uint64_t id_;  // process-unique, for thread-local ring lookup
  std::atomic<bool> enabled_{true};
  std::uint32_t sample_every_ = 1;
  mutable std::mutex rings_mu_;  // ring registration + drain only
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// Steady-clock stopwatch for real_ns.  Construct with armed=false (or in a
/// PHOTON_TRACE=OFF build) and it never touches the clock: ns() returns 0.
class RealTimer {
 public:
  explicit RealTimer(bool armed = true)
      : armed_(armed && Tracer::compiled_in()),
        start_(armed_ ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point{}) {}
  std::uint64_t ns() const {
    if (!armed_) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

/// Process-wide tracer enabled by the PHOTON_TRACE environment variable
/// ("1"/"on"/"true"; anything else or unset = nullptr).  Lets examples and
/// benches opt into tracing without code changes:
///   PHOTON_TRACE=1 ./examples/quickstart
Tracer* env_tracer();

}  // namespace photon::obs
