#pragma once
// Aggregator (Agg): the central orchestrator of paper Alg. 1, L1-12.
//
// Per round it samples clients, broadcasts the global model through each
// client's Link (real serialization + compression + CRC), runs the sampled
// clients' local pipelines in parallel, aggregates pseudo-gradients with the
// configured topology (PS / AR / RAR, optionally under secure aggregation),
// applies ServerOpt, aggregates metrics, and checkpoints.
//
// Fault-tolerant round engine (DESIGN.md §8): clients may crash mid-round,
// straggle past a simulated round deadline, or lose their link (transient
// send failures and wire corruption are retried by SimLink itself).  Failed
// and late clients are dropped from the cohort; aggregation proceeds over
// the surviving cohort (mean reweighted to the survivors, AR/RAR falling
// back to PS accounting when a ring peer died mid-round) as long as a
// configurable quorum survives, and the round is retried with a fresh
// cohort when quorum is lost.  A write-ahead round journal plus checkpoint
// metadata make crash recovery exact: ServerOpt is applied exactly once per
// completed round and the LR schedule resumes bit-identically.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/link.hpp"
#include "core/checkpoint.hpp"
#include "core/client.hpp"
#include "core/metrics.hpp"
#include "core/sampler.hpp"
#include "core/server_opt.hpp"
#include "nn/config.hpp"
#include "nn/model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace photon {

struct AggregatorConfig {
  /// K: clients sampled per round; 0 = full participation.
  int clients_per_round = 0;
  /// tau: local steps per round.
  int local_steps = 16;
  Topology topology = Topology::kRingAllReduce;
  /// Bandwidth used by the aggregation collective (MB/s), Appendix B.1's B.
  double bandwidth_mbps = 1250.0;
  /// Secure aggregation (pairwise masking); forces PS accounting since
  /// peer-to-peer aggregation is prohibited under privacy constraints (§4).
  bool secure_aggregation = false;
  /// Per-client Agg<->LLM-C link speed for wire accounting (Gbps).
  double link_bandwidth_gbps = 10.0;
  /// nu: simulated local throughput (batches/s) for wall-time accounting.
  double sim_throughput_bps = 1.0;
  std::filesystem::path checkpoint_dir;  // empty = memory-only checkpoints
  std::uint64_t seed = 0x41676701ULL;
  /// Run sampled clients on the global thread pool.
  bool parallel_clients = true;
  /// Checkpoint every Nth round (Alg. 1 L11); 1 = every round (default),
  /// 0 = never.  Large models make per-round checkpointing the dominant
  /// non-training cost, so runs that only need crash recovery can thin it.
  int checkpoint_every = 1;

  // --- fault tolerance ---------------------------------------------------
  /// Simulated wall-clock budget for one round; a client whose simulated
  /// broadcast + local-train + update-return time exceeds it is cut off as
  /// a straggler.  0 = no deadline.
  double round_deadline_s = 0.0;
  /// Quorum: the fraction of the sampled cohort that must survive for the
  /// round to aggregate (at least one client always required).  Below it
  /// the round is retried with a freshly sampled cohort.
  double min_cohort_fraction = 0.0;
  /// Fresh-cohort retries after quorum loss before run_round throws.
  int max_cohort_retries = 2;
  /// Link-level retry/backoff policy installed on every client link.
  RetryPolicy retry;

  // --- observability -----------------------------------------------------
  /// Span sink for the round path (nullptr = no tracing).  Not owned; must
  /// outlive the aggregator.  Every span's sim timestamps are pure functions
  /// of (seed, config), so traces are byte-identical at any thread count.
  obs::Tracer* tracer = nullptr;
  /// Counter/gauge/histogram sink (nullptr = none).  Not owned.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-(round, client, attempt) fault decision for one client's local
/// round, produced by a deterministic scheduler (sim/faults.hpp).
struct ClientRoundFault {
  /// Client dies after receiving the broadcast, before returning an update.
  bool crash = false;
  /// Multiplies the client's simulated local training time (>= 1 slows it
  /// down); with a round deadline this is what turns into a straggler drop.
  double straggle_factor = 1.0;
};

/// Hook consulted once per sampled client per cohort attempt; must be a
/// pure function of its arguments so replays are bit-exact at any thread
/// count.
using ClientFaultHook = std::function<ClientRoundFault(
    std::uint32_t round, int client, std::uint32_t attempt)>;

class Aggregator {
 public:
  Aggregator(const ModelConfig& model, AggregatorConfig config,
             std::unique_ptr<ServerOpt> server_opt,
             std::vector<std::unique_ptr<LLMClient>> clients,
             std::uint64_t init_seed);

  /// Execute one federated round; returns (and stores) its record.
  RoundRecord run_round();

  std::uint32_t round() const { return round_; }
  int population() const { return static_cast<int>(clients_.size()); }
  std::span<const float> global_params() const { return global_params_; }
  const ModelConfig& model_config() const { return model_config_; }

  ClientSampler& sampler() { return sampler_; }
  ServerOpt& server_opt() { return *server_opt_; }
  CheckpointStore& checkpoints() { return checkpoints_; }
  TrainingHistory& history() { return history_; }
  const TrainingHistory& history() const { return history_; }
  LLMClient& client(int id) { return *clients_.at(static_cast<std::size_t>(id)); }
  SimLink& link(int id) { return links_.at(static_cast<std::size_t>(id)); }
  const LinkStats& link_stats(int id) const {
    return links_.at(static_cast<std::size_t>(id)).stats();
  }

  /// LR-schedule offset the NEXT round's local steps start from.
  std::int64_t schedule_step_base() const { return schedule_step_base_; }
  /// Simulated wall-clock: the sim timestamp the NEXT round starts at
  /// (sum of completed rounds' slowest-client + collective sim seconds).
  double sim_now() const { return sim_now_; }
  /// Rounds each client has actually trained (data-stream position).
  const std::vector<std::uint32_t>& client_trained_rounds() const {
    return client_rounds_;
  }

  /// Install the deterministic per-client fault schedule (nullptr = none).
  void set_client_fault_hook(ClientFaultHook hook) {
    fault_hook_ = std::move(hook);
  }

  /// Annotate the most recent round's record with an eval result.
  void record_eval(double perplexity);

  /// Restore the global model from the latest checkpoint (crash recovery).
  bool restore_latest_checkpoint();

 private:
  ModelConfig model_config_;
  AggregatorConfig config_;
  std::unique_ptr<ServerOpt> server_opt_;
  std::vector<std::unique_ptr<LLMClient>> clients_;
  std::vector<SimLink> links_;
  ClientSampler sampler_;
  CheckpointStore checkpoints_;
  TrainingHistory history_;
  std::vector<float> global_params_;
  std::uint32_t round_ = 0;
  std::int64_t schedule_step_base_ = 0;
  double sim_now_ = 0.0;
  ClientFaultHook fault_hook_;
  /// Typed metric handles resolved once at construction; null (no-op) when
  /// config_.metrics is null, so hot-path increments cost one branch.
  struct {
    obs::CounterHandle straggler_cuts;
    obs::CounterHandle crashes;
    obs::CounterHandle link_failures;
    obs::CounterHandle cohort_retries;
    obs::CounterHandle tokens;
    obs::CounterHandle rounds;
    obs::GaugeHandle tokens_per_sim_second;
    obs::HistogramHandle client_sim_seconds;
  } obs_;
  /// Rounds of local training each client has run (== its data-stream
  /// position in rounds); persisted in checkpoints so recovery can fast-
  /// forward every client's stream to the exact token it would have read.
  std::vector<std::uint32_t> client_rounds_;

  // Per-cohort-slot buffers reused across rounds: received messages (their
  // payload capacity persists), client updates (delta buffers persist),
  // retained wire images for the streamed quantized fan-in (their byte
  // capacity persists), and the aggregation sum.  Round 1 allocates; later
  // rounds don't.
  std::vector<Message> rx_;
  std::vector<WireView> wire_rx_;
  std::vector<ClientUpdate> updates_;
  std::vector<float> pseudo_grad_;
};

}  // namespace photon
