#pragma once
// Aggregator (Agg): the central orchestrator of paper Alg. 1, L1-12.
//
// Per round it samples clients, broadcasts the global model through each
// client's Link (real serialization + compression + CRC), runs the sampled
// clients' local pipelines in parallel, aggregates pseudo-gradients with the
// configured topology (PS / AR / RAR, optionally under secure aggregation),
// applies ServerOpt, aggregates metrics, and checkpoints.
//
// Fault-tolerant round engine (DESIGN.md §8): clients may crash mid-round,
// straggle past a simulated round deadline, or lose their link (transient
// send failures and wire corruption are retried by SimLink itself).  Failed
// and late clients are dropped from the cohort; aggregation proceeds over
// the surviving cohort (mean reweighted to the survivors, AR/RAR falling
// back to PS accounting when a ring peer died mid-round) as long as a
// configurable quorum survives, and the round is retried with a fresh
// cohort when quorum is lost.  A write-ahead round journal plus checkpoint
// metadata make crash recovery exact: ServerOpt is applied exactly once per
// completed round and the LR schedule resumes bit-identically.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "comm/cost_model.hpp"
#include "comm/link.hpp"
#include "core/checkpoint.hpp"
#include "core/client.hpp"
#include "core/metrics.hpp"
#include "core/privacy.hpp"
#include "core/sampler.hpp"
#include "core/selection.hpp"
#include "core/server_opt.hpp"
#include "nn/config.hpp"
#include "nn/model.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace photon {

struct AggregatorConfig {
  /// K: clients sampled per round; 0 = full participation.
  int clients_per_round = 0;
  /// tau: local steps per round.
  int local_steps = 16;
  Topology topology = Topology::kRingAllReduce;
  /// Bandwidth used by the aggregation collective (MB/s), Appendix B.1's B.
  double bandwidth_mbps = 1250.0;
  /// Secure aggregation (pairwise masking); forces PS accounting since
  /// peer-to-peer aggregation is prohibited under privacy constraints (§4).
  bool secure_aggregation = false;
  /// Per-client Agg<->LLM-C link speed for wire accounting (Gbps).
  double link_bandwidth_gbps = 10.0;
  /// nu: simulated local throughput (batches/s) for wall-time accounting.
  double sim_throughput_bps = 1.0;
  std::filesystem::path checkpoint_dir;  // empty = memory-only checkpoints
  std::uint64_t seed = 0x41676701ULL;
  /// Run sampled clients on the global thread pool.
  bool parallel_clients = true;
  /// Checkpoint every Nth round (Alg. 1 L11); 1 = every round (default),
  /// 0 = never.  Large models make per-round checkpointing the dominant
  /// non-training cost, so runs that only need crash recovery can thin it.
  int checkpoint_every = 1;

  // --- fault tolerance ---------------------------------------------------
  /// Simulated wall-clock budget for one round; a client whose simulated
  /// broadcast + local-train + update-return time exceeds it is cut off as
  /// a straggler.  0 = no deadline.
  double round_deadline_s = 0.0;
  /// Quorum: the fraction of the sampled cohort that must survive for the
  /// round to aggregate (at least one client always required).  Below it
  /// the round is retried with a freshly sampled cohort.
  double min_cohort_fraction = 0.0;
  /// Fresh-cohort retries after quorum loss before run_round throws.
  int max_cohort_retries = 2;
  /// Opt-in: when every cohort attempt collapses below quorum, emit a clean
  /// skipped RoundRecord (survivors == 0, no aggregation, no server step,
  /// round index still advances) instead of throwing.  Default false keeps
  /// the historical throw-on-exhaustion contract.
  bool skip_on_quorum_loss = false;
  /// Link-level retry/backoff policy installed on every client link.
  RetryPolicy retry;

  // --- elastic async federation (DESIGN.md §12) --------------------------
  /// FedBuff-style asynchronous aggregation: run_round becomes one buffer
  /// drain — updates are accepted continuously as they arrive (each client
  /// trains on whatever global version it was dispatched with), and a
  /// staleness-weighted server-opt step fires once `buffer_goal` accepted
  /// updates accumulate.  Pending in-flight updates carry across drains,
  /// which is where staleness > 0 comes from.  Deterministic at any thread
  /// count: arrivals are processed in (sim arrival time, client id) order
  /// and the global model only changes at drain boundaries.
  struct AsyncAggregation {
    bool enabled = false;
    /// Accepted updates per server step; 0 = clients_per_round (or the full
    /// population when that is 0 too).
    int buffer_goal = 0;
    /// Admission control: server-side cap on concurrently in-flight
    /// updates; 0 = 2 * buffer_goal.  Non-admitted clients are deferred
    /// with RetryPolicy-style exponential backoff in sim time.
    int max_in_flight = 0;
    /// Staleness discount w(s) applied to an update trained s server
    /// versions ago: kPolynomial = (1 + s)^-staleness_exponent (FedBuff's
    /// choice), kConstant = 1 (plain buffer mean).  The drain normalizes by
    /// the sum of applied weights.
    enum class StalenessWeight { kConstant, kPolynomial };
    StalenessWeight staleness = StalenessWeight::kPolynomial;
    double staleness_exponent = 0.5;
  } async;

  // --- privacy engine (DESIGN.md §14) ------------------------------------
  struct Privacy {
    /// Target delta of the RDP accountant.  The accountant is built when
    /// any client adds DP noise (dp_noise_multiplier > 0); eps(delta) is
    /// published per round via the record and the privacy.dp_epsilon gauge.
    double dp_delta = 1e-5;
    /// Shamir share threshold as a fraction of the secagg cohort:
    /// t = clamp(max(2, ceil(f * n)), 2, n).  Folded into the round quorum
    /// so a sub-threshold cohort retries/skips instead of aborting.
    double secagg_threshold_fraction = 0.5;
    /// Fractional bits of the mask ring's fixed-point encoding (8..48).
    int secagg_fixed_point_bits = 32;
    /// Ignore the PHOTON_SECAGG environment opt-in.  Tests that assert
    /// exact fp32 aggregation semantics pin plain aggregation with this;
    /// everything else inherits the env sweep (tools/ci.sh secagg lane).
    bool ignore_env = false;
  } privacy;

  // --- observability -----------------------------------------------------
  /// Span sink for the round path (nullptr = no tracing).  Not owned; must
  /// outlive the aggregator.  Every span's sim timestamps are pure functions
  /// of (seed, config), so traces are byte-identical at any thread count.
  obs::Tracer* tracer = nullptr;
  /// Counter/gauge/histogram sink (nullptr = none).  Not owned.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-(round, client, attempt) fault decision for one client's local
/// round, produced by a deterministic scheduler (sim/faults.hpp).
struct ClientRoundFault {
  /// Client dies after receiving the broadcast, before returning an update.
  bool crash = false;
  /// Multiplies the client's simulated local training time (>= 1 slows it
  /// down); with a round deadline this is what turns into a straggler drop.
  double straggle_factor = 1.0;
};

/// Hook consulted once per sampled client per cohort attempt; must be a
/// pure function of its arguments so replays are bit-exact at any thread
/// count.
using ClientFaultHook = std::function<ClientRoundFault(
    std::uint32_t round, int client, std::uint32_t attempt)>;

/// Opaque per-round state extension serialized into checkpoints as the
/// third trailing v2 field (the trace-driven autotuner, src/tune).  The
/// aggregator never interprets the bytes; it captures them at every
/// checkpoint save and hands them back on restore, which is what makes a
/// tuned run's crash recovery bit-identical to an uninterrupted one.
class RoundStateExtension {
 public:
  virtual ~RoundStateExtension() = default;
  /// Called immediately before capture_state() at every checkpoint save,
  /// once the round's record is complete (the kCheckpoint / kRound spans
  /// are not yet recorded).  Gives the extension its one chance to fold
  /// the finishing round into the state about to be captured — the spans
  /// of a completed round die with a crash, so any decision that depends
  /// on them must reach the checkpoint here or it cannot be replayed.
  virtual void on_checkpoint(const RoundRecord& record) { (void)record; }
  virtual std::vector<std::uint8_t> capture_state() const = 0;
  virtual void restore_state(std::span<const std::uint8_t> bytes) = 0;
};

class Aggregator {
 public:
  Aggregator(const ModelConfig& model, AggregatorConfig config,
             std::unique_ptr<ServerOpt> server_opt,
             std::vector<std::unique_ptr<LLMClient>> clients,
             std::uint64_t init_seed);

  /// Execute one federated round; returns (and stores) its record.
  RoundRecord run_round();

  std::uint32_t round() const { return round_; }
  int population() const { return static_cast<int>(clients_.size()); }
  std::span<const float> global_params() const { return global_params_; }
  const ModelConfig& model_config() const { return model_config_; }

  ClientSampler& sampler() { return sampler_; }
  ServerOpt& server_opt() { return *server_opt_; }
  CheckpointStore& checkpoints() { return checkpoints_; }
  TrainingHistory& history() { return history_; }
  const TrainingHistory& history() const { return history_; }
  LLMClient& client(int id) { return *clients_.at(static_cast<std::size_t>(id)); }
  SimLink& link(int id) { return links_.at(static_cast<std::size_t>(id)); }
  const LinkStats& link_stats(int id) const {
    return links_.at(static_cast<std::size_t>(id)).stats();
  }

  /// LR-schedule offset the NEXT round's local steps start from.
  std::int64_t schedule_step_base() const { return schedule_step_base_; }
  /// Simulated wall-clock: the sim timestamp the NEXT round starts at
  /// (sum of completed rounds' slowest-client + collective sim seconds).
  double sim_now() const { return sim_now_; }
  /// Rounds each client has actually trained (data-stream position).
  const std::vector<std::uint32_t>& client_trained_rounds() const {
    return client_rounds_;
  }

  /// Install the deterministic per-client fault schedule (nullptr = none).
  void set_client_fault_hook(ClientFaultHook hook) {
    fault_hook_ = std::move(hook);
  }

  /// Install an elastic membership plan (arrivals / permanent departures,
  /// applied at round/drain boundaries).  Resets every client to the plan's
  /// initial state; a default-constructed (disabled) plan restores the
  /// fixed full population.
  void set_membership_plan(const MembershipPlan& plan);
  /// Lifecycle state of one client under the installed membership plan.
  MembershipState membership_state(int id) const {
    return membership_.at(static_cast<std::size_t>(id));
  }
  /// Active (joined, not departed) clients right now.
  int active_population() const;
  /// Async engine: updates currently in flight (dispatched, not resolved).
  int async_in_flight() const;

  // --- per-round tuning knobs (src/tune decision interface) --------------
  // All setters take effect at the next round/drain boundary; calling them
  // mid-round is undefined.  They exist so the trace-driven autotuner can
  // close the loop from observed spans back into configuration.
  const AggregatorConfig& config() const { return config_; }
  /// Aggregation topology for subsequent rounds (ignored while
  /// secure_aggregation forces PS accounting).
  void set_topology(Topology t) { config_.topology = t; }
  /// Cohort size K for subsequent rounds (0 = full participation).
  void set_clients_per_round(int k);
  /// Wire codec for every client's update link ("" = identity fp32).
  /// Throws on an unknown codec name; error-feedback residuals are kept
  /// across switches (deterministic in both the live and restored timeline).
  void set_wire_codec(const std::string& codec);
  /// Async engine limits (0 keeps the config default derivation).  The
  /// in-flight slot pool only ever grows, so pending updates keep their
  /// slots when the cap is lowered; the admission cap applies immediately.
  void set_async_limits(int buffer_goal, int max_in_flight);
  /// Late tracer attachment (the tuner needs spans even when the caller
  /// did not configure a tracer); rewires every client link's span sink.
  void set_tracer(obs::Tracer* tracer);
  obs::Tracer* tracer() const { return config_.tracer; }
  /// Attach the opaque checkpoint state extension (nullptr = detach).
  /// Not owned; must outlive the aggregator.
  void set_state_extension(RoundStateExtension* ext) { state_ext_ = ext; }
  /// Restore-only: pin the sim clock to a checkpointed value.  Sync saves
  /// do not persist the clock (restored runs restart at sim 0, which is
  /// harmless for training state), but span *durations* are differences of
  /// absolute sim timestamps, so an extension that feeds spans back into
  /// decisions must reinstate the exact pre-crash epoch or the arithmetic
  /// drifts by an ULP.  The async engine restores its own clock; calling
  /// this afterwards with the same checkpoint's value is a no-op.
  void set_sim_clock(double t) { sim_now_ = t; }

  /// Annotate the most recent round's record with an eval result.
  void record_eval(double perplexity);

  /// Restore the global model from the latest checkpoint (crash recovery).
  /// In async mode this also restores the mid-buffer engine state (pending
  /// in-flight updates, membership, admission counters, the sim clock), so
  /// the recovered timeline is bit-identical to an uninterrupted run.
  bool restore_latest_checkpoint();

  // --- privacy engine introspection (DESIGN.md §14) ----------------------
  /// The DP accountant, or nullptr when no client adds DP noise.
  const privacy::RdpAccountant* accountant() const { return accountant_.get(); }
  /// Lifetime count of dropped secagg members whose masks were
  /// reconstructed from surviving Shamir shares.
  std::uint64_t shares_reconstructed_total() const {
    return shares_reconstructed_total_;
  }

 private:
  /// One occupied admission slot: a dispatched update in flight between the
  /// server and a client.  Slots are reused across the whole run (their
  /// message/wire/update buffers keep capacity), so async resident memory
  /// is bounded by max_in_flight regardless of population.
  struct InFlight {
    bool busy = false;
    int client = -1;
    double dispatch_time = 0.0;
    double arrive_time = 0.0;            // when the outcome reaches the server
    std::uint32_t dispatch_version = 0;  // server version trained against
    std::uint64_t wave_id = 0;           // secagg dispatch wave (0 = plain)
    std::uint8_t failure_kind = 0;       // 0 ok, 1 crash, 2 link failure
    bool trained = false;                // local data stream advanced
    bool streamed = false;               // update retained as a wire image
    double train_sim_seconds = 0.0;
    Message header;       // received update header (metadata = metrics)
    WireView wire;        // retained quantized wire image when streamed
    ClientUpdate update;  // reused delta/metric storage
  };

  RoundRecord run_round_sync();
  RoundRecord run_round_async();
  /// Apply the membership plan's arrivals/departures for round_ (client-id
  /// order; pure given (plan, round, states)).
  void apply_membership(RoundRecord& record);
  /// Effective FedBuff buffer goal / in-flight cap for this config.
  int async_buffer_goal() const;
  int async_max_in_flight() const;
  double staleness_weight(std::uint32_t staleness) const;
  /// Deterministic admission-deferral backoff for a client's count'th
  /// consecutive defer; keyed on (retry.jitter_seed, client, count) so a
  /// restored run reproduces the exact deferral timeline.
  double defer_backoff(int client, std::uint32_t count) const;
  /// Train + transmit one admitted client into `slot` (parallel-safe: only
  /// this slot, this client, and this client's link are touched).
  void async_dispatch(InFlight& slot, int client, const Message& broadcast,
                      std::uint32_t dispatch_seq, bool tracing);
  AsyncAggregatorState capture_async_state() const;
  void restore_async_state(const AsyncAggregatorState& state);
  /// Compose this round into the accountant and publish eps on the record.
  void account_privacy(RoundRecord& record);
  PrivacyCheckpointState capture_privacy_state() const;

  ModelConfig model_config_;
  AggregatorConfig config_;
  std::unique_ptr<ServerOpt> server_opt_;
  std::vector<std::unique_ptr<LLMClient>> clients_;
  std::vector<SimLink> links_;
  ClientSampler sampler_;
  CheckpointStore checkpoints_;
  TrainingHistory history_;
  std::vector<float> global_params_;
  std::uint32_t round_ = 0;
  std::int64_t schedule_step_base_ = 0;
  double sim_now_ = 0.0;
  ClientFaultHook fault_hook_;
  RoundStateExtension* state_ext_ = nullptr;
  /// Typed metric handles resolved once at construction; null (no-op) when
  /// config_.metrics is null, so hot-path increments cost one branch.
  struct {
    obs::CounterHandle straggler_cuts;
    obs::CounterHandle crashes;
    obs::CounterHandle link_failures;
    obs::CounterHandle cohort_retries;
    obs::CounterHandle tokens;
    obs::CounterHandle rounds;
    obs::GaugeHandle tokens_per_sim_second;
    obs::HistogramHandle client_sim_seconds;
    // elastic async engine
    obs::CounterHandle async_drains;
    obs::CounterHandle async_accepted;
    obs::CounterHandle async_discarded;
    obs::CounterHandle async_deferred;
    obs::CounterHandle arrivals;
    obs::CounterHandle departures;
    obs::GaugeHandle async_in_flight;
    obs::HistogramHandle async_staleness;
    // privacy engine
    obs::CounterHandle secagg_rounds;
    obs::CounterHandle share_recoveries;
    obs::GaugeHandle dp_epsilon;
  } obs_;
  /// Rounds of local training each client has run (== its data-stream
  /// position in rounds); persisted in checkpoints so recovery can fast-
  /// forward every client's stream to the exact token it would have read.
  std::vector<std::uint32_t> client_rounds_;

  // Per-cohort-slot buffers reused across rounds: received messages (their
  // payload capacity persists), client updates (delta buffers persist),
  // retained wire images for the streamed quantized fan-in (their byte
  // capacity persists), and the aggregation sum.  Round 1 allocates; later
  // rounds don't.
  std::vector<Message> rx_;
  std::vector<WireView> wire_rx_;
  std::vector<ClientUpdate> updates_;
  std::vector<float> pseudo_grad_;

  // --- elastic async engine state (DESIGN.md §12) -----------------------
  MembershipPlan membership_plan_;
  std::vector<MembershipState> membership_;   // per client
  std::vector<std::uint32_t> defer_counts_;   // consecutive admission defers
  std::vector<double> next_eligible_;         // sim time a defer expires
  std::vector<std::uint32_t> dispatch_seq_;   // dispatches per client per drain
  std::vector<InFlight> slots_;               // sized max_in_flight, reused
  std::vector<int> client_slot_;              // client -> slot, -1 = idle
  std::uint64_t async_accepted_total_ = 0;
  std::uint64_t async_discarded_total_ = 0;
  std::vector<double> async_acc_;  // fp64 staleness-weighted accumulator

  // --- privacy engine state (DESIGN.md §14) -----------------------------
  /// RDP accountant (built when any client adds DP noise); composes one
  /// Gaussian mechanism per completed round/drain.
  std::unique_ptr<privacy::RdpAccountant> accountant_;
  /// Monotone id of the next async secagg dispatch wave; persisted so a
  /// restored run seeds the same per-wave mask sessions.
  std::uint64_t secagg_wave_counter_ = 0;
  std::uint64_t shares_reconstructed_total_ = 0;
  std::vector<std::uint64_t> secagg_acc_;  // mod-2^64 masked accumulator
};

}  // namespace photon
