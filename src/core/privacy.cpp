#include "core/privacy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "util/rng.hpp"

namespace photon::privacy {

double u01(std::uint64_t h) {
  // Top 53 bits, then +1: uniform over {1..2^53} * 2^-53 = (0, 1].
  return static_cast<double>((h >> 11) + 1) * 0x1.0p-53;
}

double stateless_gaussian(std::uint64_t key, std::uint64_t index) {
  const double u1 = u01(hash_combine(key, 2 * index));
  const double u2 = u01(hash_combine(key, 2 * index + 1));
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

namespace {

// Standard moments-accountant grid: dense near 1 (tight for many rounds /
// small sigma), geometric above (tight for few rounds / large sigma).
constexpr double kAlphaGrid[] = {1.25, 1.5,  1.75, 2.0,  2.5,  3.0,   3.5,
                                 4.0,  5.0,  6.0,  8.0,  10.0, 12.0,  16.0,
                                 20.0, 24.0, 32.0, 48.0, 64.0, 128.0, 256.0,
                                 512.0, 1024.0};

}  // namespace

RdpAccountant::RdpAccountant(double noise_multiplier, double delta)
    : sigma_(noise_multiplier), delta_(delta) {
  if (!(noise_multiplier > 0.0)) {
    throw std::invalid_argument("RdpAccountant: noise_multiplier must be > 0");
  }
  if (!(delta > 0.0) || delta >= 1.0) {
    throw std::invalid_argument("RdpAccountant: delta must be in (0, 1)");
  }
}

double RdpAccountant::epsilon() const {
  if (rounds_ == 0) return 0.0;
  const double rdp_per_alpha =
      static_cast<double>(rounds_) / (2.0 * sigma_ * sigma_);
  const double log_inv_delta = std::log(1.0 / delta_);
  double best = std::numeric_limits<double>::infinity();
  for (const double alpha : kAlphaGrid) {
    const double eps = alpha * rdp_per_alpha + log_inv_delta / (alpha - 1.0);
    best = std::min(best, eps);
  }
  return best;
}

double RdpAccountant::closed_form_epsilon(double sigma, double delta,
                                          std::uint64_t rounds) {
  if (rounds == 0) return 0.0;
  const double r = static_cast<double>(rounds);
  return r / (2.0 * sigma * sigma) +
         std::sqrt(2.0 * r * std::log(1.0 / delta)) / sigma;
}

std::span<const double> RdpAccountant::alpha_grid() {
  return {kAlphaGrid, std::size(kAlphaGrid)};
}

}  // namespace photon::privacy
