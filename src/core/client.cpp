#include "core/client.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "comm/compression.hpp"
#include "comm/quantization.hpp"
#include "tensor/kernels.hpp"
#include "tensor/simd.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace photon {

LLMClient::LLMClient(int id, ClientTrainConfig config,
                     std::unique_ptr<DataSource> data, std::uint64_t seed)
    : id_(id),
      config_(std::move(config)),
      data_(std::move(data)),
      replica_seed_(hash_combine(seed, static_cast<std::uint64_t>(id))),
      schedule_(config_.schedule) {
  if (data_ == nullptr) {
    throw std::invalid_argument("LLMClient: null data source");
  }
  if (config_.local_batch <= 0) {
    throw std::invalid_argument("LLMClient: local_batch must be > 0");
  }
  if (config_.sub_nodes < 1) {
    throw std::invalid_argument("LLMClient: sub_nodes must be >= 1");
  }
  if (config_.ephemeral && !config_.stateless_optimizer) {
    throw std::invalid_argument(
        "LLMClient: ephemeral requires stateless_optimizer (optimizer state "
        "cannot survive the post-round release)");
  }
  if (config_.link_codec.empty()) {
    // tools/ci.sh reruns tier-1 with PHOTON_WIRE_CODEC=q8 to sweep the
    // quantized wire path through every federation test; an explicit codec
    // in the config always wins.
    if (const char* env = std::getenv("PHOTON_WIRE_CODEC")) {
      config_.link_codec = env;
    }
  }
  if (config_.clip_update_norm > 0.0) {
    post_.add(std::make_unique<ClipStage>(config_.clip_update_norm));
  }
  if (config_.dp_noise_multiplier > 0.0) {
    const double clip = config_.clip_update_norm > 0.0
                            ? config_.clip_update_norm
                            : 1.0;
    post_.add(std::make_unique<DpNoiseStage>(
        config_.dp_noise_multiplier, clip,
        hash_combine(seed, 0xD9ULL + static_cast<std::uint64_t>(id))));
  }
  post_.add(std::make_unique<CompressStage>(config_.link_codec));
}

void LLMClient::set_link_codec(const std::string& codec) {
  if (codec_by_name(codec) == nullptr) {
    throw std::invalid_argument("LLMClient::set_link_codec: unknown codec " +
                                codec);
  }
  config_.link_codec = codec;
  post_.set_codec(codec);
}

void LLMClient::ensure_replica() {
  if (model_ != nullptr) return;
  model_ = std::make_unique<GptModel>(config_.model, replica_seed_);
  opt_ = std::make_unique<AdamW>(model_->num_params(), config_.adamw);
}

std::pair<double, std::uint64_t> LLMClient::train_replica(
    int local_steps, std::int64_t step_base) {
  const int batch = config_.local_batch;
  const int seq = config_.model.seq_len;
  double loss_sum = 0.0;
  std::uint64_t tokens = 0;
  double grad_norm_sum = 0.0;
  const bool tracing =
      trace_.tracer != nullptr && trace_.tracer->sampled(trace_.round);
  for (int step = 0; step < local_steps; ++step) {
    const obs::RealTimer step_timer(tracing);
    const Batch b = data_->next_batch(batch, seq);
    model_->zero_grad();
    const float loss = model_->train_step_fb(b.tokens, b.targets, batch, seq);
    // Fused schedule + clip + AdamW: the cosine LR is evaluated inside the
    // step call and the clip folds into the per-element grad read — one
    // optimizer call, one pass over the grads.  Grads are left unscaled,
    // which is fine — zero_grad() clears them before the next step reads
    // them.
    const double norm =
        opt_->step_clipped(model_->params(), model_->grads(), schedule_,
                           step_base + step, config_.max_grad_norm);
    loss_sum += loss;
    grad_norm_sum += norm;
    tokens += static_cast<std::uint64_t>(batch) * seq;
    if (tracing) {
      trace_.tracer->record(
          {obs::SpanKind::kLocalStep, trace_.round, id_, step,
           trace_.sim_begin + step * trace_.sim_per_step,
           trace_.sim_begin + (step + 1) * trace_.sim_per_step,
           step_timer.ns()});
    }
  }
  last_grad_norm_ = local_steps > 0 ? grad_norm_sum / local_steps : 0.0;
  return {local_steps > 0 ? loss_sum / local_steps : 0.0, tokens};
}

void LLMClient::fast_forward(std::uint32_t rounds, int local_steps) {
  if (rounds == 0) return;
  if (local_steps <= 0) {
    throw std::invalid_argument("LLMClient::fast_forward: local_steps <= 0");
  }
  // Each local step draws `local_batch` rows of seq_len + 1 tokens (see
  // DataSource::next_batch); sub-federated clients draw that per node.
  const std::size_t row = static_cast<std::size_t>(config_.model.seq_len) + 1;
  const std::uint64_t row_draws = static_cast<std::uint64_t>(rounds) *
                                  static_cast<std::uint64_t>(local_steps) *
                                  static_cast<std::uint64_t>(config_.sub_nodes) *
                                  static_cast<std::uint64_t>(config_.local_batch);
  std::vector<int> window;
  for (std::uint64_t i = 0; i < row_draws; ++i) {
    window.clear();
    data_->next_tokens(row, window);
  }
}

ClientUpdate LLMClient::run_round(std::span<const float> global_params,
                                  std::uint32_t round, int local_steps,
                                  std::int64_t schedule_step_base) {
  ClientUpdate update;
  run_round(global_params, round, local_steps, schedule_step_base, update);
  return update;
}

void LLMClient::run_round(std::span<const float> global_params,
                          std::uint32_t round, int local_steps,
                          std::int64_t schedule_step_base,
                          ClientUpdate& update) {
  ensure_replica();
  if (global_params.size() != model_->num_params()) {
    throw std::invalid_argument("LLMClient::run_round: param size mismatch");
  }
  if (local_steps <= 0) {
    throw std::invalid_argument("LLMClient::run_round: local_steps <= 0");
  }

  update.client_id = id_;
  update.tokens = 0;
  update.mean_train_loss = 0.0;
  update.metrics.clear();
  update.post = {};

  double mean_loss = 0.0;
  std::uint64_t tokens = 0;

  if (config_.sub_nodes == 1) {
    // Fast interconnect path (Alg. 1 L16-18): one logical replica at the
    // autotuned device batch.
    model_->load_params(global_params);
    if (config_.stateless_optimizer) opt_->reset();
    auto [loss, toks] = train_replica(local_steps, schedule_step_base);
    mean_loss = loss;
    tokens = toks;
  } else {
    // Nested sub-federation (Alg. 1 L19-25): train `sub_nodes` replicas on
    // sub-partitioned data (IID default) and average their parameters.
    std::vector<double> param_sum(model_->num_params(), 0.0);
    for (int node = 0; node < config_.sub_nodes; ++node) {
      model_->load_params(global_params);
      opt_->reset();  // each node replica starts fresh
      auto [loss, toks] = train_replica(local_steps, schedule_step_base);
      mean_loss += loss / config_.sub_nodes;
      tokens += toks;
      const auto params = model_->params();
      for (std::size_t i = 0; i < params.size(); ++i) {
        param_sum[i] += params[i];
      }
    }
    auto params = model_->params();
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] = static_cast<float>(param_sum[i] / config_.sub_nodes);
    }
  }

  // Local checkpoint for fast recovery (Alg. 1 L27); skipped for ephemeral
  // clients, which would otherwise pin a param-sized buffer per client.
  if (!config_.ephemeral) {
    checkpoint_.assign(model_->params().begin(), model_->params().end());
  }

  // delta_k = theta_global - theta_k (Alg. 1 L7), in one vectorized pass.
  update.delta.resize(model_->num_params());
  const auto params = model_->params();
  kernels::sub(update.delta.data(), global_params.data(), params.data(),
               params.size());

  // Post-processing (Alg. 1 L28): clip / DP noise / codec selection.  The
  // (round, client) context keys the stateless DP noise stream.
  update.post = post_.run(update.delta, PostProcessContext{round, id_});

  // Error feedback for lossy wire codecs (DESIGN.md §11): fold the previous
  // round's quantization residual into this update before it hits the wire,
  // then record the residual the codec will leave this round.  The fused
  // quant_i8_ef kernel replicates the codec's chunk/block scales exactly, so
  // residual_of computes precisely delta_sent - dequant(quant(delta_sent)).
  const Codec* wire_codec = codec_by_name(update.post.codec);
  const int qbits = wire_codec != nullptr ? wire_codec->quant_bits() : 0;
  if (qbits != 0 && config_.quant_error_feedback) {
    const std::size_t n = update.delta.size();
    if (ef_residual_.size() != n) ef_residual_.assign(n, 0.0f);
    simd::ops().acc(update.delta.data(), ef_residual_.data(), n);
    wire_quant::residual_of(update.delta.data(), ef_residual_.data(), n,
                            qbits);
    update.metrics["ef_residual_norm"] =
        kernels::l2_norm(ef_residual_.data(), n);
  }

  // Ephemeral mode: the delta is computed and post-processed, so the
  // replica (params + grads + activations + AdamW moments) can go — the
  // next round rebuilds it from the same seed and loads the broadcast.
  if (config_.ephemeral) {
    model_.reset();
    opt_.reset();
  }

  update.tokens = tokens;
  update.mean_train_loss = mean_loss;
  update.metrics["train_loss"] = mean_loss;
  update.metrics["grad_norm"] = last_grad_norm_;
  update.metrics["tokens"] = static_cast<double>(tokens);
  update.metrics["local_steps"] = static_cast<double>(local_steps);
  PHOTON_LOG_DEBUG("llm-client", "client %d round %u loss %.4f", id_, round,
                   mean_loss);
}

}  // namespace photon
