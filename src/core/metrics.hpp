#pragma once
// Training metrics and their federated aggregation (AggMetrics, Alg. 1 L10).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace photon {

/// Free-form metric dictionary exchanged via Link message metadata.
using MetricDict = std::map<std::string, double>;

/// Weighted aggregation of per-client metric dictionaries: keys are
/// averaged weighted by `weights` (e.g. tokens processed); missing keys are
/// averaged over the clients reporting them.
MetricDict aggregate_metrics(const std::vector<MetricDict>& metrics,
                             const std::vector<double>& weights);

/// One federated round's record, accumulated by the Aggregator.
struct RoundRecord {
  std::uint32_t round = 0;
  std::vector<int> participants;
  double mean_train_loss = 0.0;
  double update_norm = 0.0;       // ||averaged pseudo-gradient||
  std::uint64_t tokens_this_round = 0;
  std::uint64_t comm_bytes = 0;   // wire bytes this round (all clients)
  double sim_comm_seconds = 0.0;  // simulated aggregation communication time
  double sim_local_seconds = 0.0; // simulated local compute time
  double wall_seconds = 0.0;       // measured wall time of the whole round
  double wall_train_seconds = 0.0; // measured wall time inside client training
  MetricDict client_metrics;      // aggregated client metric dict
  double eval_perplexity = -1.0;  // < 0 = not evaluated this round

  // --- failure telemetry (fault-tolerant round engine) ---
  /// Sampled clients of the final cohort whose updates were NOT aggregated.
  std::vector<int> dropped_clients;
  int survivors = 0;              // cohort members actually aggregated
  int crashed_clients = 0;        // injected/observed client crashes
  int link_failed_clients = 0;    // transmit gave up (attempts/deadline)
  int straggler_drops = 0;        // cut off by the round deadline
  std::uint32_t cohort_retries = 0;  // fresh cohorts sampled after quorum loss
  std::uint64_t link_retries = 0;    // link-level retransmissions this round
  std::uint64_t corrupt_chunks = 0;  // CRC-detected wire corruptions
  double backoff_seconds = 0.0;      // simulated link backoff this round
  bool topology_fallback = false;    // AR/RAR degraded to PS mid-round
  /// Simulated (transfer + backoff + local train) seconds of the slowest
  /// surviving client; what a round deadline is compared against.
  double sim_slowest_client_seconds = 0.0;
  /// Sync mode with skip_on_quorum_loss: every cohort collapsed below
  /// quorum, so no aggregation/server step happened.  survivors == 0 and the
  /// loss/norm fields are zero — a clean no-op record, never a 0/0 mean.
  bool skipped = false;

  // --- elastic async engine telemetry (DESIGN.md §12) ---
  bool async_drain = false;       // record is one FedBuff buffer drain
  /// Server model version the drain stepped FROM (== round for drain N).
  std::uint32_t server_version = 0;
  double mean_staleness = 0.0;    // over accepted updates this drain
  std::uint32_t max_staleness = 0;
  std::uint32_t admission_deferred = 0;  // back-off verdicts issued
  /// Updates that arrived but were discarded (client left before arrival).
  std::uint32_t discarded_updates = 0;
  std::uint32_t arrivals = 0;     // clients that joined at this boundary
  std::uint32_t departures = 0;   // clients that left at this boundary

  // --- privacy telemetry (secure aggregation + DP, DESIGN.md §14) ---
  /// Aggregate computed under pairwise masking (the server only ever saw
  /// masked updates and their ring sum).
  bool secure_round = false;
  /// Dropped members whose pairwise masks were reconstructed from
  /// surviving Shamir shares this round.
  int secagg_dropouts_recovered = 0;
  /// Simulated seconds spent in key exchange (+ recovery) this round.
  double sim_privacy_seconds = 0.0;
  /// RDP accountant's eps(delta) after this round; < 0 = DP disabled.
  double dp_epsilon = -1.0;
};

/// Full training history with convenience queries used by benches.
class TrainingHistory {
 public:
  void add(RoundRecord record) { records_.push_back(std::move(record)); }
  const std::vector<RoundRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }

  /// Mutable access to the most recent record (for late eval annotation).
  RoundRecord& last_mutable() { return records_.back(); }

  /// First round whose eval perplexity is <= target; -1 if never reached.
  int first_round_reaching(double target_ppl) const;

  /// Cumulative tokens through round `round` (inclusive).
  std::uint64_t tokens_through(std::uint32_t round) const;

  /// Sum of simulated (local + comm) seconds through the first round
  /// reaching target; < 0 if never reached.
  double sim_seconds_to(double target_ppl) const;

  double best_perplexity() const;
  double final_perplexity() const;

 private:
  std::vector<RoundRecord> records_;
};

}  // namespace photon
