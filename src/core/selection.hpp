#pragma once
// Value-aware client selection strategies (paper §6, "Addressing Data
// Heterogeneity": "client selection based on their value to the global
// model", citing power-of-choice [Cho et al. 2020]).
//
// These extend the uniform ClientSampler: the Aggregator can consult a
// SelectionStrategy that ranks available clients by reported statistics
// (e.g. last local loss) before each round.

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace photon {

// --- elastic membership (DESIGN.md §12) ------------------------------------
//
// Planet-scale federations never see a fixed population: clients appear
// mid-run, participate for a while, and leave for good ("The Future of LLM
// Pre-training is Federated", PAPERS.md).  A MembershipPlan is the
// declarative, seeded schedule of those arrivals and departures — like a
// FaultPlan, every decision is a pure stateless hash of
// (seed, round, client, kind), so elastic runs replay bit-exactly at any
// thread count.

/// Lifecycle of one client: kAbsent -> kActive -> kLeft.  Departure is
/// permanent (a returning device is a NEW client in this model); arrival
/// bootstraps the client from the current global model via the ordinary
/// broadcast path.
enum class MembershipState : std::uint8_t { kAbsent = 0, kActive = 1, kLeft = 2 };

/// What the plan asks of one client at one round boundary.
enum class MembershipAction : std::uint8_t { kNone = 0, kArrive = 1, kLeave = 2 };

struct MembershipPlan {
  std::uint64_t seed = 0x4D454D42ULL;  // "MEMB"

  /// Clients with id >= initial_population start kAbsent and can only enter
  /// via an arrival; < 0 (default) = everyone starts kActive.
  int initial_population = -1;

  /// P(an absent client arrives at a given round boundary).
  double arrive_prob = 0.0;
  /// P(an active client leaves permanently at a given round boundary).
  double leave_prob = 0.0;

  /// Probabilistic churn fires only for rounds in [first_round, last_round].
  std::uint32_t first_round = 0;
  std::uint32_t last_round = std::numeric_limits<std::uint32_t>::max();

  /// Explicit scheduled events (tests, demos); consulted before the
  /// probabilistic draw and independent of the round window.
  struct Event {
    std::uint32_t round = 0;
    int client = -1;
    MembershipAction action = MembershipAction::kNone;
  };
  std::vector<Event> scheduled;

  /// True when the plan can change membership at all (an all-default plan
  /// installed on an engine must leave the run bit-identical to no plan).
  bool enabled() const {
    return initial_population >= 0 || arrive_prob > 0.0 || leave_prob > 0.0 ||
           !scheduled.empty();
  }

  /// Initial lifecycle state for `client` before round 0.
  MembershipState initial_state(int client) const {
    return (initial_population >= 0 && client >= initial_population)
               ? MembershipState::kAbsent
               : MembershipState::kActive;
  }

  /// The action for `client` at the boundary of `round` given its current
  /// state.  Pure function of (seed, round, client, state) — never of call
  /// order — so membership replays bit-exactly.  Illegal transitions
  /// (arrive while active, leave while absent, anything after kLeft)
  /// resolve to kNone.
  MembershipAction action(std::uint32_t round, int client,
                          MembershipState state) const;

  /// Throws std::invalid_argument on out-of-range probabilities.
  void validate() const;
};

/// Per-client statistics the strategies rank on; updated by the caller
/// after each round from client metrics.
struct ClientStats {
  double last_loss = -1.0;     // < 0 = never trained
  std::uint64_t tokens = 0;    // lifetime tokens contributed
  std::uint32_t last_round = 0;
};

class SelectionStrategy {
 public:
  virtual ~SelectionStrategy() = default;
  virtual std::string name() const = 0;

  /// Choose k distinct clients from `available` given their stats.
  /// Deterministic in (seed, round).
  virtual std::vector<int> select(const std::vector<int>& available,
                                  const std::map<int, ClientStats>& stats,
                                  int k, std::uint32_t round) = 0;
};

/// Uniform-at-random (FedAvg default; what the paper's main results use).
class UniformSelection final : public SelectionStrategy {
 public:
  explicit UniformSelection(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "uniform"; }
  std::vector<int> select(const std::vector<int>& available,
                          const std::map<int, ClientStats>& stats, int k,
                          std::uint32_t round) override;

 private:
  std::uint64_t seed_;
};

/// Power-of-choice (Cho et al. 2020): sample a candidate set of size d >= k
/// uniformly, then keep the k candidates with the HIGHEST last loss —
/// biasing rounds toward clients the global model currently serves worst.
class PowerOfChoiceSelection final : public SelectionStrategy {
 public:
  PowerOfChoiceSelection(std::uint64_t seed, int candidate_factor = 2);
  std::string name() const override { return "power-of-choice"; }
  std::vector<int> select(const std::vector<int>& available,
                          const std::map<int, ClientStats>& stats, int k,
                          std::uint32_t round) override;

 private:
  std::uint64_t seed_;
  int candidate_factor_;
};

/// Loss-proportional sampling: draw k clients without replacement with
/// probability proportional to (last_loss - min_loss + eps); never-trained
/// clients get the maximum weight so everyone is explored.
class LossProportionalSelection final : public SelectionStrategy {
 public:
  explicit LossProportionalSelection(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "loss-proportional"; }
  std::vector<int> select(const std::vector<int>& available,
                          const std::map<int, ClientStats>& stats, int k,
                          std::uint32_t round) override;

 private:
  std::uint64_t seed_;
};

std::unique_ptr<SelectionStrategy> make_selection_strategy(
    const std::string& name, std::uint64_t seed);

}  // namespace photon
