#pragma once
// Value-aware client selection strategies (paper §6, "Addressing Data
// Heterogeneity": "client selection based on their value to the global
// model", citing power-of-choice [Cho et al. 2020]).
//
// These extend the uniform ClientSampler: the Aggregator can consult a
// SelectionStrategy that ranks available clients by reported statistics
// (e.g. last local loss) before each round.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace photon {

/// Per-client statistics the strategies rank on; updated by the caller
/// after each round from client metrics.
struct ClientStats {
  double last_loss = -1.0;     // < 0 = never trained
  std::uint64_t tokens = 0;    // lifetime tokens contributed
  std::uint32_t last_round = 0;
};

class SelectionStrategy {
 public:
  virtual ~SelectionStrategy() = default;
  virtual std::string name() const = 0;

  /// Choose k distinct clients from `available` given their stats.
  /// Deterministic in (seed, round).
  virtual std::vector<int> select(const std::vector<int>& available,
                                  const std::map<int, ClientStats>& stats,
                                  int k, std::uint32_t round) = 0;
};

/// Uniform-at-random (FedAvg default; what the paper's main results use).
class UniformSelection final : public SelectionStrategy {
 public:
  explicit UniformSelection(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "uniform"; }
  std::vector<int> select(const std::vector<int>& available,
                          const std::map<int, ClientStats>& stats, int k,
                          std::uint32_t round) override;

 private:
  std::uint64_t seed_;
};

/// Power-of-choice (Cho et al. 2020): sample a candidate set of size d >= k
/// uniformly, then keep the k candidates with the HIGHEST last loss —
/// biasing rounds toward clients the global model currently serves worst.
class PowerOfChoiceSelection final : public SelectionStrategy {
 public:
  PowerOfChoiceSelection(std::uint64_t seed, int candidate_factor = 2);
  std::string name() const override { return "power-of-choice"; }
  std::vector<int> select(const std::vector<int>& available,
                          const std::map<int, ClientStats>& stats, int k,
                          std::uint32_t round) override;

 private:
  std::uint64_t seed_;
  int candidate_factor_;
};

/// Loss-proportional sampling: draw k clients without replacement with
/// probability proportional to (last_loss - min_loss + eps); never-trained
/// clients get the maximum weight so everyone is explored.
class LossProportionalSelection final : public SelectionStrategy {
 public:
  explicit LossProportionalSelection(std::uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "loss-proportional"; }
  std::vector<int> select(const std::vector<int>& available,
                          const std::map<int, ClientStats>& stats, int k,
                          std::uint32_t round) override;

 private:
  std::uint64_t seed_;
};

std::unique_ptr<SelectionStrategy> make_selection_strategy(
    const std::string& name, std::uint64_t seed);

}  // namespace photon
