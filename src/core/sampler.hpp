#pragma once
// Client Sampler (paper Alg. 1, L4): C ~ U(P, K) — sample K clients per
// round uniformly without replacement from the population P.
//
// Partial participation (paper §5.5) is expressed by K < P; the sampler also
// supports per-client availability to model intermittent clients
// (Appendix A: "billion-scale experiments assume intermittent client
// availability").

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace photon {

class ClientSampler {
 public:
  ClientSampler(int population, std::uint64_t seed);

  int population() const { return population_; }

  /// Mark a client (un)available; unavailable clients are never sampled.
  void set_available(int client, bool available);
  bool is_available(int client) const;
  int num_available() const;

  /// Sample min(k, available) distinct available clients for `round`.
  /// Deterministic given (seed, round, availability).  `salt` draws an
  /// independent cohort for the same round — used when a round loses
  /// quorum and must be retried with fresh participants; salt 0 reproduces
  /// the historical (pre-salt) cohort bit-exactly.
  std::vector<int> sample(int k, std::uint32_t round, std::uint32_t salt = 0);

 private:
  int population_;
  std::uint64_t seed_;
  std::vector<bool> available_;
};

}  // namespace photon
