#include "core/selection.hpp"

#include <algorithm>
#include <stdexcept>

namespace photon {
namespace {

// Decision-kind tags for the membership hash streams (see sim/faults.cpp
// for the same pattern): arrival draws never perturb departure draws.
constexpr std::uint64_t kArriveTag = 0xA441E5ULL;
constexpr std::uint64_t kLeaveTag = 0x1EAFE5ULL;

/// Uniform [0, 1) from a stateless hash (same mapping as Rng::next_double).
double membership_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t membership_key(std::uint64_t seed, std::uint32_t round,
                             int client, std::uint64_t tag) {
  std::uint64_t h = hash_combine(seed, round);
  h = hash_combine(h, static_cast<std::uint64_t>(client));
  return hash_combine(h, tag);
}

double loss_or_max(const std::map<int, ClientStats>& stats, int client,
                   double fallback) {
  const auto it = stats.find(client);
  if (it == stats.end() || it->second.last_loss < 0.0) return fallback;
  return it->second.last_loss;
}

std::vector<int> finalize(std::vector<int> picked) {
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace

void MembershipPlan::validate() const {
  auto check_prob = [](double p, const char* name) {
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument(std::string("MembershipPlan: ") + name +
                                  " must be in [0, 1]");
    }
  };
  check_prob(arrive_prob, "arrive_prob");
  check_prob(leave_prob, "leave_prob");
}

MembershipAction MembershipPlan::action(std::uint32_t round, int client,
                                        MembershipState state) const {
  if (state == MembershipState::kLeft) return MembershipAction::kNone;
  // Scheduled events win over the probabilistic draw and ignore the window.
  for (const Event& e : scheduled) {
    if (e.round != round || e.client != client) continue;
    if (e.action == MembershipAction::kArrive &&
        state == MembershipState::kAbsent) {
      return MembershipAction::kArrive;
    }
    if (e.action == MembershipAction::kLeave &&
        state == MembershipState::kActive) {
      return MembershipAction::kLeave;
    }
  }
  if (round < first_round || round > last_round) return MembershipAction::kNone;
  if (state == MembershipState::kAbsent && arrive_prob > 0.0) {
    const std::uint64_t key = membership_key(seed, round, client, kArriveTag);
    if (membership_unit(key) < arrive_prob) return MembershipAction::kArrive;
  }
  if (state == MembershipState::kActive && leave_prob > 0.0) {
    const std::uint64_t key = membership_key(seed, round, client, kLeaveTag);
    if (membership_unit(key) < leave_prob) return MembershipAction::kLeave;
  }
  return MembershipAction::kNone;
}

std::vector<int> UniformSelection::select(
    const std::vector<int>& available, const std::map<int, ClientStats>&,
    int k, std::uint32_t round) {
  if (available.empty() || k <= 0) return {};
  Rng rng(hash_combine(seed_, round));
  const auto take =
      std::min<std::size_t>(static_cast<std::size_t>(k), available.size());
  const auto idx = rng.sample_without_replacement(available.size(), take);
  std::vector<int> out;
  out.reserve(take);
  for (std::size_t i : idx) out.push_back(available[i]);
  return finalize(std::move(out));
}

PowerOfChoiceSelection::PowerOfChoiceSelection(std::uint64_t seed,
                                               int candidate_factor)
    : seed_(seed), candidate_factor_(candidate_factor) {
  if (candidate_factor < 1) {
    throw std::invalid_argument("PowerOfChoice: candidate_factor < 1");
  }
}

std::vector<int> PowerOfChoiceSelection::select(
    const std::vector<int>& available,
    const std::map<int, ClientStats>& stats, int k, std::uint32_t round) {
  if (available.empty() || k <= 0) return {};
  Rng rng(hash_combine(seed_, round));
  const auto want = std::min<std::size_t>(
      static_cast<std::size_t>(k) * static_cast<std::size_t>(candidate_factor_),
      available.size());
  const auto idx = rng.sample_without_replacement(available.size(), want);
  std::vector<int> candidates;
  candidates.reserve(want);
  for (std::size_t i : idx) candidates.push_back(available[i]);

  // Highest loss first; unseen clients are treated as highest-loss so they
  // get explored early.
  constexpr double kUnseen = 1e30;
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](int a, int b) {
                     return loss_or_max(stats, a, kUnseen) >
                            loss_or_max(stats, b, kUnseen);
                   });
  candidates.resize(
      std::min<std::size_t>(static_cast<std::size_t>(k), candidates.size()));
  return finalize(std::move(candidates));
}

std::vector<int> LossProportionalSelection::select(
    const std::vector<int>& available,
    const std::map<int, ClientStats>& stats, int k, std::uint32_t round) {
  if (available.empty() || k <= 0) return {};
  Rng rng(hash_combine(seed_, round));

  double max_loss = 0.0;
  double min_loss = 1e30;
  for (int c : available) {
    const auto it = stats.find(c);
    if (it != stats.end() && it->second.last_loss >= 0.0) {
      max_loss = std::max(max_loss, it->second.last_loss);
      min_loss = std::min(min_loss, it->second.last_loss);
    }
  }
  if (max_loss == 0.0) max_loss = 1.0;  // nobody trained yet

  std::vector<int> pool = available;
  std::vector<int> picked;
  const auto take =
      std::min<std::size_t>(static_cast<std::size_t>(k), pool.size());
  for (std::size_t round_pick = 0; round_pick < take; ++round_pick) {
    std::vector<double> weights;
    weights.reserve(pool.size());
    for (int c : pool) {
      const double loss = loss_or_max(stats, c, max_loss);
      weights.push_back(loss - std::min(min_loss, loss) + 1e-3);
    }
    const std::size_t pick = rng.sample_weighted(weights);
    picked.push_back(pool[pick]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return finalize(std::move(picked));
}

std::unique_ptr<SelectionStrategy> make_selection_strategy(
    const std::string& name, std::uint64_t seed) {
  if (name == "uniform") return std::make_unique<UniformSelection>(seed);
  if (name == "power-of-choice") {
    return std::make_unique<PowerOfChoiceSelection>(seed);
  }
  if (name == "loss-proportional") {
    return std::make_unique<LossProportionalSelection>(seed);
  }
  throw std::invalid_argument("make_selection_strategy: unknown " + name);
}

}  // namespace photon
