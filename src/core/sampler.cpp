#include "core/sampler.hpp"

#include <algorithm>
#include <stdexcept>

namespace photon {

ClientSampler::ClientSampler(int population, std::uint64_t seed)
    : population_(population), seed_(seed),
      available_(static_cast<std::size_t>(population), true) {
  if (population <= 0) {
    throw std::invalid_argument("ClientSampler: population must be > 0");
  }
}

void ClientSampler::set_available(int client, bool available) {
  if (client < 0 || client >= population_) {
    throw std::out_of_range("ClientSampler::set_available");
  }
  available_[static_cast<std::size_t>(client)] = available;
}

bool ClientSampler::is_available(int client) const {
  if (client < 0 || client >= population_) {
    throw std::out_of_range("ClientSampler::is_available");
  }
  return available_[static_cast<std::size_t>(client)];
}

int ClientSampler::num_available() const {
  return static_cast<int>(
      std::count(available_.begin(), available_.end(), true));
}

std::vector<int> ClientSampler::sample(int k, std::uint32_t round,
                                       std::uint32_t salt) {
  if (k <= 0) throw std::invalid_argument("ClientSampler::sample: k <= 0");
  std::vector<int> pool;
  pool.reserve(static_cast<std::size_t>(population_));
  for (int c = 0; c < population_; ++c) {
    if (available_[static_cast<std::size_t>(c)]) pool.push_back(c);
  }
  if (pool.empty()) return {};
  std::uint64_t key = hash_combine(seed_, round);
  if (salt != 0) key = hash_combine(key, salt);
  Rng rng(key);
  const auto take = std::min<std::size_t>(static_cast<std::size_t>(k), pool.size());
  const auto idx = rng.sample_without_replacement(pool.size(), take);
  std::vector<int> out;
  out.reserve(take);
  for (std::size_t i : idx) out.push_back(pool[i]);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace photon
