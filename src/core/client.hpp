#pragma once
// LLM Client (LLM-C): the local training pipeline of paper Alg. 1, L13-28.
//
// Each client owns a model replica, an AdamW ClientOpt, a bound DataSource
// stream, and a post-processing pipeline.  Per round it: receives global
// parameters, trains `local_steps` with its hardware batch size under the
// stretched cosine schedule, optionally runs a nested sub-federation across
// its nodes (L19-25), checkpoints locally (L27), post-processes the update
// (L28), and returns the pseudo-gradient contribution
//   delta_k = theta_global - theta_k.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/metrics.hpp"
#include "core/postprocess.hpp"
#include "data/stream.hpp"
#include "nn/config.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "nn/scheduler.hpp"
#include "obs/trace.hpp"

namespace photon {

/// Sim-time coordinates for the local_step spans a client emits while
/// training.  The round engine installs it immediately before run_round:
/// `sim_begin` is the absolute sim timestamp local training starts at and
/// `sim_per_step` the deterministic simulated duration of one local step,
/// so step k spans [begin + k*per_step, begin + (k+1)*per_step] regardless
/// of which worker thread runs the client.
struct ClientTraceContext {
  obs::Tracer* tracer = nullptr;  // nullptr = no tracing (the default)
  std::uint32_t round = 0;
  double sim_begin = 0.0;
  double sim_per_step = 0.0;
};

struct ClientTrainConfig {
  ModelConfig model;
  int local_batch = 4;  // B_l: hardware-determined per-client batch size
  CosineScheduleConfig schedule;
  AdamWConfig adamw;
  float max_grad_norm = 1.0f;
  /// Photon default: reset optimizer state each round (Appendix A,
  /// "stateless local optimization procedure").  DiLoCo keeps state.
  bool stateless_optimizer = true;
  /// > 1 enables the nested sub-federation path (Alg. 1 L19-25): the round
  /// is trained as `sub_nodes` independent replicas over sub-partitioned
  /// data, locally averaged before returning.
  int sub_nodes = 1;
  /// Post-processing (Alg. 1 L28).
  double clip_update_norm = 0.0;     // 0 = no update clipping
  double dp_noise_multiplier = 0.0;  // 0 = no DP noise
  /// Wire codec for the update return: "" / "rle0" (lossless), "q8" / "q4"
  /// (lossy blockwise quantization), "lzss" (diagnostic-only).  When empty,
  /// the PHOTON_WIRE_CODEC environment variable (read at construction)
  /// overrides it — used by tools/ci.sh to rerun tier-1 over the quantized
  /// wire path.
  std::string link_codec;
  /// Error feedback for lossy wire codecs: carry the quantization residual
  /// delta - dequant(quant(delta)) into the next round's pseudo-gradient so
  /// the wire loss stays transient instead of accumulating (the ablation in
  /// bench_round_path shows q8 without this visibly diverges).  No effect
  /// under lossless codecs.
  bool quant_error_feedback = true;
  /// Release the model replica and optimizer between rounds: both are
  /// constructed on demand inside run_round and freed before it returns, so
  /// an idle client costs only its data stream and EF residual.  This is
  /// what makes a 10k-client elastic population resident-memory-bounded
  /// (10k eager micro-model replicas ≈ 28 GB; 10k ephemeral ones ≈ 0).
  /// Requires stateless_optimizer (state cannot survive the release) and
  /// disables the local fast-recovery checkpoint.
  bool ephemeral = false;
};

struct ClientUpdate {
  int client_id = -1;
  std::vector<float> delta;  // theta_global - theta_local
  std::uint64_t tokens = 0;
  double mean_train_loss = 0.0;
  MetricDict metrics;
  PostProcessReport post;
};

class LLMClient {
 public:
  LLMClient(int id, ClientTrainConfig config,
            std::unique_ptr<DataSource> data, std::uint64_t seed);

  int id() const { return id_; }
  const ClientTrainConfig& config() const { return config_; }
  DataSource& data_source() { return *data_; }

  /// Execute one federated round (Alg. 1 L13-28).  `schedule_step_base` is
  /// the cumulative sequential local-step count, synchronizing the cosine
  /// schedule across rounds (Table 5: "S_C synchronized across sequential
  /// steps").
  ClientUpdate run_round(std::span<const float> global_params,
                         std::uint32_t round, int local_steps,
                         std::int64_t schedule_step_base);

  /// Allocation-reusing variant: writes into `out`, recycling its delta and
  /// metric storage across rounds (the Aggregator keeps one ClientUpdate
  /// per cohort slot alive for the whole run).
  void run_round(std::span<const float> global_params, std::uint32_t round,
                 int local_steps, std::int64_t schedule_step_base,
                 ClientUpdate& out);

  /// Local checkpoint from the last completed round (Alg. 1 L27), for fast
  /// recovery; empty before the first round and always empty for ephemeral
  /// clients (recovery re-broadcasts the global model instead).
  std::span<const float> local_checkpoint() const { return checkpoint_; }

  /// Crash recovery: advance the data stream past `rounds` already-trained
  /// rounds of `local_steps` each, drawing tokens in exactly the pattern
  /// local training would have, so a freshly constructed client in a
  /// recovered process sees the same next batches as its uninterrupted
  /// twin.  Model and optimizer state are untouched (the global broadcast
  /// overwrites params; the stateless default resets the optimizer).
  void fast_forward(std::uint32_t rounds, int local_steps);

  /// Install the tracing context for the next run_round (copy; cheap).
  void set_trace(const ClientTraceContext& ctx) { trace_ = ctx; }

  /// Runtime wire-codec knob (the autotuner's decision interface): retarget
  /// the post-processing pipeline's compression stage for subsequent
  /// rounds.  The error-feedback residual is deliberately kept across
  /// switches — it folds into the next lossy round deterministically in
  /// both the live and any crash-restored timeline.  Throws on an unknown
  /// codec name.
  void set_link_codec(const std::string& codec);

  /// Error-feedback residual carried from the last quantized-codec round
  /// (empty until one ran).  The Aggregator checkpoints and restores it so
  /// crash recovery reproduces the exact wire stream bit for bit.
  const std::vector<float>& ef_residual() const { return ef_residual_; }
  void set_ef_residual(std::vector<float> residual) {
    ef_residual_ = std::move(residual);
  }

 private:
  /// Construct the model replica and optimizer if absent.  Deterministic in
  /// (config, seed), so a lazily built replica is bit-identical to an eager
  /// one — run_round overwrites its params with the broadcast anyway.
  void ensure_replica();

  /// Train one replica for `local_steps` from the model's current params.
  /// Returns (mean loss, tokens).
  std::pair<double, std::uint64_t> train_replica(int local_steps,
                                                 std::int64_t step_base);

  int id_;
  ClientTrainConfig config_;
  std::unique_ptr<DataSource> data_;
  std::uint64_t replica_seed_;
  std::unique_ptr<GptModel> model_;  // lazily built; freed when ephemeral
  std::unique_ptr<AdamW> opt_;
  CosineSchedule schedule_;
  PostProcessPipeline post_;
  std::vector<float> checkpoint_;
  std::vector<float> ef_residual_;
  double last_grad_norm_ = 0.0;
  ClientTraceContext trace_;
};

}  // namespace photon
