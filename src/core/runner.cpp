#include "core/runner.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "core/server_opt.hpp"
#include "obs/export.hpp"
#include "data/corpus.hpp"
#include "data/stream.hpp"
#include "eval/perplexity.hpp"
#include "nn/scheduler.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace photon {

namespace {

/// The corpus styles clients draw from: one shared style for IID, the four
/// Pile-style categories for heterogeneous runs.
std::vector<CorpusStyle> styles_for(const RunnerConfig& config) {
  if (config.heterogeneity_blend >= 1.0) return {c4_style()};
  return pile_styles(config.heterogeneity_blend);
}

CorpusConfig corpus_config_for(const RunnerConfig& config) {
  CorpusConfig cc;
  cc.vocab_size = config.model.vocab_size;
  cc.branching = config.corpus_branching;
  cc.mean_doc_len = config.corpus_mean_doc_len;
  cc.base_seed = hash_combine(config.seed, 0xDA7AULL);
  return cc;
}

}  // namespace

PhotonRunner::PhotonRunner(RunnerConfig config) : config_(std::move(config)) {
  if (config_.population <= 0) {
    throw std::invalid_argument("PhotonRunner: population must be > 0");
  }
  if (config_.rounds <= 0) {
    throw std::invalid_argument("PhotonRunner: rounds must be > 0");
  }

  const CorpusConfig cc = corpus_config_for(config_);
  const auto styles = styles_for(config_);

  // Corpora are shared immutable objects; streams are per-client.
  std::vector<std::shared_ptr<const MarkovSource>> corpora;
  corpora.reserve(styles.size());
  for (const auto& style : styles) {
    corpora.push_back(std::make_shared<MarkovSource>(cc, style));
  }

  // Client schedule: the Photon recipe stretches the cosine period for the
  // small local batch (Appendix C.1); the caller passes the local-step
  // period directly (default: full run length).
  CosineScheduleConfig sched;
  sched.max_lr = config_.max_lr;
  sched.min_lr_factor = config_.min_lr_factor;
  sched.warmup_steps = config_.warmup_steps;
  sched.total_steps = config_.schedule_total_steps > 0
                          ? config_.schedule_total_steps
                          : static_cast<std::int64_t>(config_.rounds) *
                                config_.local_steps;

  ClientTrainConfig ctc;
  ctc.model = config_.model;
  ctc.local_batch = config_.local_batch;
  ctc.schedule = sched;
  ctc.max_grad_norm = config_.max_grad_norm;
  ctc.stateless_optimizer = config_.stateless_optimizer;
  ctc.sub_nodes = config_.sub_nodes;
  ctc.link_codec = config_.link_codec;
  ctc.ephemeral = config_.ephemeral_clients;

  std::vector<std::unique_ptr<LLMClient>> clients;
  clients.reserve(static_cast<std::size_t>(config_.population));
  for (int i = 0; i < config_.population; ++i) {
    // Heterogeneous sources are dealt round-robin: with 4 styles and 8
    // clients, each style serves two clients (paper §5.1 configuration).
    const auto& corpus = corpora[static_cast<std::size_t>(i) % corpora.size()];
    auto source = std::make_unique<CorpusStreamSource>(
        corpus, hash_combine(config_.seed, 0x517EA4 + static_cast<std::uint64_t>(i)));
    clients.push_back(std::make_unique<LLMClient>(
        i, ctc, std::move(source), hash_combine(config_.seed, 0xC11E47ULL)));
  }

  AggregatorConfig ac;
  ac.clients_per_round = config_.clients_per_round;
  ac.local_steps = config_.local_steps;
  ac.topology = config_.topology;
  ac.bandwidth_mbps = config_.bandwidth_mbps;
  ac.link_bandwidth_gbps = config_.link_bandwidth_gbps;
  ac.secure_aggregation = config_.secure_aggregation;
  ac.sim_throughput_bps = config_.sim_throughput_bps;
  ac.round_deadline_s = config_.round_deadline_s;
  ac.checkpoint_dir = config_.checkpoint_dir;
  ac.checkpoint_every = config_.checkpoint_every;
  ac.seed = hash_combine(config_.seed, 0x5A3FULL);
  ac.async = config_.async;
  ac.skip_on_quorum_loss = config_.skip_on_quorum_loss;
  ac.min_cohort_fraction = config_.min_cohort_fraction;
  ac.max_cohort_retries = config_.max_cohort_retries;

  // PHOTON_TRACE=1 opts a run into tracing with zero code changes.
  if (config_.tracer == nullptr && config_.metrics == nullptr) {
    if (obs::Tracer* env = obs::env_tracer(); env != nullptr) {
      config_.tracer = env;
      env_traced_ = true;
    }
  }
  ac.tracer = config_.tracer;
  ac.metrics = config_.metrics;

  aggregator_ = std::make_unique<Aggregator>(
      config_.model, ac,
      make_server_opt(config_.server_opt, config_.server_lr,
                      config_.server_momentum),
      std::move(clients), hash_combine(config_.seed, 0x1217ULL));
  if (config_.membership.enabled()) {
    aggregator_->set_membership_plan(config_.membership);
  }

  // Validation set: equal-weight mixture over every style (the paper
  // evaluates all settings on the C4 validation set; for heterogeneous
  // federations the mixture plays that common-reference role).
  std::vector<std::unique_ptr<DataSource>> eval_streams;
  std::vector<double> eval_weights;
  for (const auto& corpus : corpora) {
    eval_streams.push_back(std::make_unique<CorpusStreamSource>(
        corpus, hash_combine(config_.seed, 0xE7A1ULL)));
    eval_weights.push_back(1.0);
  }
  StreamMixer eval_mixer(std::move(eval_streams), std::move(eval_weights),
                         hash_combine(config_.seed, 0xE7A2ULL));
  eval_set_ = materialize(eval_mixer, config_.eval_tokens);

  eval_model_ = std::make_unique<GptModel>(config_.model, /*seed=*/0);
}

PhotonRunner::~PhotonRunner() = default;

double PhotonRunner::evaluate_now() {
  eval_model_->load_params(aggregator_->global_params());
  const EvalResult r = evaluate_perplexity(
      *eval_model_, eval_set_, config_.eval_batches, config_.eval_batch_size);
  return r.perplexity;
}

const TrainingHistory& PhotonRunner::run() {
  obs::Tracer* tracer = config_.tracer;
  for (int r = 0; r < config_.rounds; ++r) {
    const RoundRecord record = aggregator_->run_round();
    if (round_hook_) round_hook_(*aggregator_, record);
    const bool eval_round =
        (r + 1) % config_.eval_every == 0 || r + 1 == config_.rounds;
    if (eval_round) {
      const bool tracing = tracer != nullptr && tracer->sampled(record.round);
      const obs::RealTimer eval_timer(tracing);
      const double ppl = evaluate_now();
      if (tracing) {
        // Server-side eval is not simulated: a sim-zero-width mark at the
        // round boundary carrying the measured real duration.
        tracer->record({obs::SpanKind::kEval, record.round,
                        obs::kAggregatorActor, -1, aggregator_->sim_now(),
                        aggregator_->sim_now(), eval_timer.ns()});
      }
      aggregator_->record_eval(ppl);
      PHOTON_LOG_INFO("runner", "round %d eval ppl %.3f", r, ppl);
      if (config_.target_perplexity > 0.0 &&
          ppl <= config_.target_perplexity) {
        break;
      }
    }
  }
  // Env-opted tracing (PHOTON_TRACE=1): export everything the run recorded
  // as a Perfetto-loadable Chrome trace plus a human-readable round table.
  if (env_traced_ && tracer != nullptr) {
    const std::vector<obs::TraceEvent> events = tracer->drain();
    std::ofstream out("photon_trace.json");
    out << obs::to_chrome_trace(events);
    std::fputs(obs::render_round_table(events).c_str(), stderr);
    PHOTON_LOG_INFO("runner", "wrote %zu trace events to photon_trace.json",
                    events.size());
  }
  return aggregator_->history();
}

}  // namespace photon
