#pragma once
// Client-update post-processing pipeline (paper Alg. 1 L28: "gradient
// clipping, compression, or differential privacy noise injection" before
// returning updates to Agg; §4: Link's "extensible post-processing
// pipeline").
//
// Stages run in order over the pseudo-gradient; the compression stage only
// *selects* the Link codec (compression itself is lossless and happens at
// the Message layer so the server decodes transparently).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace photon {

/// Identifies the (round, client) a pipeline run belongs to, so stages that
/// draw randomness (DP noise) can derive it statelessly: replays, crash
/// recovery, and re-ordered execution reproduce identical bytes.
struct PostProcessContext {
  std::uint32_t round = 0;
  int client = -1;
};

struct PostProcessReport {
  double preclip_norm = 0.0;
  bool clipped = false;
  double dp_noise_stddev = 0.0;
  std::string codec;
};

class UpdateStage {
 public:
  virtual ~UpdateStage() = default;
  virtual std::string name() const = 0;
  virtual void apply(std::span<float> update, PostProcessReport& report,
                     const PostProcessContext& ctx) = 0;
};

/// L2-norm clipping of the whole update (pseudo-gradient).
class ClipStage final : public UpdateStage {
 public:
  explicit ClipStage(double max_norm);
  std::string name() const override { return "clip"; }
  void apply(std::span<float> update, PostProcessReport& report,
             const PostProcessContext& ctx) override;

 private:
  double max_norm_;
};

/// Gaussian DP noise: sigma = noise_multiplier * max_norm (to pair with a
/// preceding ClipStage for (eps, delta)-DP accounting).  Draws are
/// stateless per (seed, round, client, element) — see core/privacy.hpp —
/// so the same (round, client) always injects the same noise bytes.
class DpNoiseStage final : public UpdateStage {
 public:
  DpNoiseStage(double noise_multiplier, double max_norm, std::uint64_t seed);
  std::string name() const override { return "dp-noise"; }
  void apply(std::span<float> update, PostProcessReport& report,
             const PostProcessContext& ctx) override;

 private:
  double stddev_;
  std::uint64_t seed_;
};

/// Select the lossless Link codec for the outgoing message.
class CompressStage final : public UpdateStage {
 public:
  explicit CompressStage(std::string codec);
  std::string name() const override { return "compress"; }
  void apply(std::span<float> update, PostProcessReport& report,
             const PostProcessContext& ctx) override;
  /// Retarget the codec (autotuner knob); throws on an unknown name.
  void set_codec(std::string codec);
  const std::string& codec() const { return codec_; }

 private:
  std::string codec_;
};

class PostProcessPipeline {
 public:
  PostProcessPipeline() = default;

  PostProcessPipeline& add(std::unique_ptr<UpdateStage> stage);
  std::size_t num_stages() const { return stages_.size(); }

  /// Retarget every compression stage's codec (the autotuner's wire-codec
  /// knob); returns false when the pipeline has no compression stage.
  bool set_codec(const std::string& codec);

  PostProcessReport run(std::span<float> update,
                        const PostProcessContext& ctx = {});

 private:
  std::vector<std::unique_ptr<UpdateStage>> stages_;
};

}  // namespace photon
