#pragma once
// Client-level differential privacy: stateless Gaussian noise and an RDP
// (moments) accountant (DESIGN.md §14).
//
// Mechanism: every participating client clips its pseudo-gradient to L2
// norm C (ClipStage) and adds N(0, (sigma*C)^2) per element (DpNoiseStage).
// Noise draws are a pure function of (client seed, round, element index) —
// no generator state — so replays, crash recovery, and any sharding
// reproduce the same noise bit for bit.
//
// Accounting: the subsampled-free worst case — a client participates in
// every round, each round is one Gaussian mechanism with noise multiplier
// sigma.  Renyi DP of a single mechanism at order alpha is alpha/(2 sigma^2);
// R-fold composition adds linearly; conversion to (eps, delta)-DP takes the
// minimum over the alpha grid of
//
//     eps(alpha) = R * alpha / (2 sigma^2) + log(1/delta) / (alpha - 1).
//
// The continuous minimum (reference for tests) is
//     eps = R/(2 sigma^2) + sqrt(2 R log(1/delta)) / sigma,
// attained at alpha* = 1 + sigma * sqrt(2 log(1/delta) / R); the grid value
// is within a few percent of it and always an upper bound.

#include <cstdint>
#include <span>
#include <vector>

namespace photon::privacy {

/// Unit-uniform in (0, 1] from a 64-bit hash (never 0, so log() is safe).
double u01(std::uint64_t h);

/// Stateless standard Gaussian draw: Box-Muller over the hash pair
/// (key, 2*index) / (key, 2*index + 1).  Deterministic per (key, index).
double stateless_gaussian(std::uint64_t key, std::uint64_t index);

/// Renyi-DP accountant over a fixed alpha grid.
class RdpAccountant {
 public:
  /// `noise_multiplier` = sigma (noise stddev / clip norm), > 0.
  /// `delta` in (0, 1).
  RdpAccountant(double noise_multiplier, double delta);

  /// Compose `rounds` more Gaussian mechanisms.
  void account_rounds(std::uint64_t rounds = 1) { rounds_ += rounds; }
  std::uint64_t accounted_rounds() const { return rounds_; }

  /// Current (eps, delta)-DP guarantee: min over the alpha grid.
  /// 0 when no rounds have been accounted yet.
  double epsilon() const;

  double noise_multiplier() const { return sigma_; }
  double delta() const { return delta_; }

  /// Closed-form continuous-alpha optimum (the test reference; a lower
  /// bound on the grid epsilon for the same (sigma, delta, rounds)).
  static double closed_form_epsilon(double sigma, double delta,
                                    std::uint64_t rounds);

  static std::span<const double> alpha_grid();

 private:
  double sigma_ = 0.0;
  double delta_ = 0.0;
  std::uint64_t rounds_ = 0;
};

}  // namespace photon::privacy
