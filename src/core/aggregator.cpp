#include "core/aggregator.hpp"

#include <stdexcept>

#include "comm/collective.hpp"
#include "comm/message.hpp"
#include "comm/secure_agg.hpp"
#include "tensor/kernels.hpp"
#include "util/logging.hpp"
#include "util/threadpool.hpp"

namespace photon {

Aggregator::Aggregator(const ModelConfig& model, AggregatorConfig config,
                       std::unique_ptr<ServerOpt> server_opt,
                       std::vector<std::unique_ptr<LLMClient>> clients,
                       std::uint64_t init_seed)
    : model_config_(model),
      config_(std::move(config)),
      server_opt_(std::move(server_opt)),
      clients_(std::move(clients)),
      sampler_(static_cast<int>(clients_.size()), config_.seed),
      checkpoints_(config_.checkpoint_dir) {
  if (clients_.empty()) {
    throw std::invalid_argument("Aggregator: no clients");
  }
  if (server_opt_ == nullptr) {
    throw std::invalid_argument("Aggregator: null server optimizer");
  }
  if (config_.local_steps <= 0) {
    throw std::invalid_argument("Aggregator: local_steps must be > 0");
  }
  for (const auto& c : clients_) {
    if (c->config().model.num_params() != model_config_.num_params()) {
      throw std::invalid_argument("Aggregator: client/global model mismatch");
    }
  }
  links_.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    links_.emplace_back("agg<->client" + std::to_string(i),
                        config_.link_bandwidth_gbps);
  }

  // InitModel (Alg. 1 L2): the server initializes the global parameters.
  GptModel init(model_config_, init_seed);
  global_params_.assign(init.params().begin(), init.params().end());
}

RoundRecord Aggregator::run_round() {
  const int k = config_.clients_per_round > 0
                    ? config_.clients_per_round
                    : static_cast<int>(clients_.size());
  const std::vector<int> cohort = sampler_.sample(k, round_);
  if (cohort.empty()) {
    throw std::runtime_error("Aggregator::run_round: no available clients");
  }
  std::uint64_t link_bytes_before = 0;
  for (const auto& link : links_) link_bytes_before += link.stats().wire_bytes;

  RoundRecord record;
  record.round = round_;
  record.participants = cohort;

  // Broadcast + local training (Alg. 1 L5-6), clients in parallel.
  std::vector<ClientUpdate> updates(cohort.size());
  auto run_client = [&](std::size_t i) {
    const int id = cohort[i];
    SimLink& link = links_[static_cast<std::size_t>(id)];
    Message broadcast;
    broadcast.type = MessageType::kModelBroadcast;
    broadcast.round = round_;
    broadcast.sender = 0;
    broadcast.payload = global_params_;
    broadcast.metadata["local_steps"] = config_.local_steps;
    const Message received = link.transmit(broadcast);
    updates[i] = clients_[static_cast<std::size_t>(id)]->run_round(
        received.payload, round_, config_.local_steps, schedule_step_base_);
  };
  if (config_.parallel_clients && cohort.size() > 1) {
    global_pool().parallel_for(cohort.size(), run_client);
  } else {
    for (std::size_t i = 0; i < cohort.size(); ++i) run_client(i);
  }

  // Updates return through the Link (Alg. 1 L7), exercising the codec each
  // client's post-processing selected.
  std::vector<std::vector<float>> deltas(cohort.size());
  std::vector<MetricDict> client_metrics(cohort.size());
  std::vector<double> weights(cohort.size());
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    const int id = cohort[i];
    SimLink& link = links_[static_cast<std::size_t>(id)];
    Message up;
    up.type = MessageType::kClientUpdate;
    up.round = round_;
    up.sender = static_cast<std::uint32_t>(id);
    up.codec = updates[i].post.codec;
    up.payload = updates[i].delta;
    up.metadata = updates[i].metrics;
    const Message received = link.transmit(up);
    deltas[i] = received.payload;
    client_metrics[i] = received.metadata;
    weights[i] = static_cast<double>(updates[i].tokens);
    record.tokens_this_round += updates[i].tokens;
    record.mean_train_loss +=
        updates[i].mean_train_loss / static_cast<double>(cohort.size());
  }
  // Aggregate (Alg. 1 L8): element-wise mean of pseudo-gradients through
  // the configured topology; secure aggregation masks first and forces PS.
  std::vector<float> pseudo_grad;
  double sim_comm_seconds = 0.0;
  std::uint64_t collective_bytes = 0;
  if (config_.secure_aggregation && cohort.size() > 1) {
    SecureAggregator sec(static_cast<int>(cohort.size()),
                         hash_combine(config_.seed, round_));
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      sec.mask_in_place(static_cast<int>(i), deltas[i]);
    }
    pseudo_grad.assign(deltas.front().size(), 0.0f);
    SecureAggregator::sum_into(deltas, pseudo_grad);
    const float inv = 1.0f / static_cast<float>(cohort.size());
    kernels::scale_inplace(pseudo_grad.data(), inv, pseudo_grad.size());
    const auto report = CollectiveReport{
        Topology::kParameterServer, static_cast<int>(cohort.size()),
        static_cast<std::uint64_t>(cohort.size()) * pseudo_grad.size() *
            sizeof(float),
        2ull * cohort.size() * pseudo_grad.size() * sizeof(float), 0.0};
    collective_bytes = report.total_bytes;
    sim_comm_seconds = static_cast<double>(report.bottleneck_bytes) /
                       (config_.bandwidth_mbps * 1024.0 * 1024.0);
  } else if (cohort.size() > 1) {
    std::vector<std::span<float>> spans;
    spans.reserve(deltas.size());
    for (auto& d : deltas) spans.emplace_back(d);
    const CollectiveReport report =
        collective_mean(config_.topology, spans, config_.bandwidth_mbps);
    pseudo_grad = deltas.front();
    sim_comm_seconds = report.seconds;
    collective_bytes = report.total_bytes;
  } else {
    pseudo_grad = deltas.front();
  }

  // ServerOpt (Alg. 1 L9).
  record.update_norm =
      kernels::l2_norm(pseudo_grad.data(), pseudo_grad.size());
  server_opt_->apply(global_params_, pseudo_grad);

  // AggMetrics (L10) and Checkpoint (L11).
  record.client_metrics = aggregate_metrics(client_metrics, weights);
  checkpoints_.save(round_, global_params_);

  // Wire bytes: broadcast + update message bytes through Agg links plus the
  // aggregation collective's fabric traffic.
  std::uint64_t link_bytes_after = 0;
  for (const auto& link : links_) link_bytes_after += link.stats().wire_bytes;
  record.comm_bytes = (link_bytes_after - link_bytes_before) + collective_bytes;

  record.sim_comm_seconds = sim_comm_seconds;
  record.sim_local_seconds =
      static_cast<double>(config_.local_steps) / config_.sim_throughput_bps;

  PHOTON_LOG_INFO("aggregator",
                  "round %u: K=%zu loss %.4f update-norm %.4f",
                  round_, cohort.size(), record.mean_train_loss,
                  record.update_norm);

  history_.add(record);
  ++round_;
  schedule_step_base_ += config_.local_steps;
  return record;
}

void Aggregator::record_eval(double perplexity) {
  if (history_.empty()) {
    throw std::runtime_error("Aggregator::record_eval: no rounds yet");
  }
  history_.last_mutable().eval_perplexity = perplexity;
}

bool Aggregator::restore_latest_checkpoint() {
  const auto ckpt = checkpoints_.latest();
  if (!ckpt.has_value()) return false;
  if (ckpt->params.size() != global_params_.size()) return false;
  global_params_ = ckpt->params;
  round_ = ckpt->round + 1;
  return true;
}

}  // namespace photon
