#include "core/aggregator.hpp"

#include <chrono>
#include <stdexcept>

#include "comm/collective.hpp"
#include "comm/message.hpp"
#include "comm/secure_agg.hpp"
#include "tensor/kernels.hpp"
#include "util/logging.hpp"
#include "util/threadpool.hpp"

namespace photon {

Aggregator::Aggregator(const ModelConfig& model, AggregatorConfig config,
                       std::unique_ptr<ServerOpt> server_opt,
                       std::vector<std::unique_ptr<LLMClient>> clients,
                       std::uint64_t init_seed)
    : model_config_(model),
      config_(std::move(config)),
      server_opt_(std::move(server_opt)),
      clients_(std::move(clients)),
      sampler_(static_cast<int>(clients_.size()), config_.seed),
      checkpoints_(config_.checkpoint_dir) {
  if (clients_.empty()) {
    throw std::invalid_argument("Aggregator: no clients");
  }
  if (server_opt_ == nullptr) {
    throw std::invalid_argument("Aggregator: null server optimizer");
  }
  if (config_.local_steps <= 0) {
    throw std::invalid_argument("Aggregator: local_steps must be > 0");
  }
  if (config_.checkpoint_every < 0) {
    throw std::invalid_argument("Aggregator: checkpoint_every must be >= 0");
  }
  for (const auto& c : clients_) {
    if (c->config().model.num_params() != model_config_.num_params()) {
      throw std::invalid_argument("Aggregator: client/global model mismatch");
    }
  }
  links_.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    links_.emplace_back("agg<->client" + std::to_string(i),
                        config_.link_bandwidth_gbps);
    // Chunked encode/decode work may use the pool; when the round is
    // already fanned out across it, transmits degrade to inline (nesting
    // policy) and the bits are identical either way.
    links_.back().set_thread_pool(&global_pool());
  }

  // InitModel (Alg. 1 L2): the server initializes the global parameters.
  GptModel init(model_config_, init_seed);
  global_params_.assign(init.params().begin(), init.params().end());
}

RoundRecord Aggregator::run_round() {
  const auto t_round = std::chrono::steady_clock::now();
  const int k = config_.clients_per_round > 0
                    ? config_.clients_per_round
                    : static_cast<int>(clients_.size());
  const std::vector<int> cohort = sampler_.sample(k, round_);
  if (cohort.empty()) {
    throw std::runtime_error("Aggregator::run_round: no available clients");
  }
  std::uint64_t link_bytes_before = 0;
  for (const auto& link : links_) link_bytes_before += link.stats().wire_bytes;

  RoundRecord record;
  record.round = round_;
  record.participants = cohort;

  if (rx_.size() < cohort.size()) rx_.resize(cohort.size());
  if (updates_.size() < cohort.size()) updates_.resize(cohort.size());

  // One broadcast message borrows the global parameters; every client link
  // encodes straight from that buffer, so broadcasting to K clients makes
  // zero copies of the model beyond the wire itself.
  Message broadcast;
  broadcast.type = MessageType::kModelBroadcast;
  broadcast.round = round_;
  broadcast.sender = 0;
  broadcast.payload_view = global_params_;
  broadcast.metadata["local_steps"] = config_.local_steps;

  // Broadcast + local training + update return (Alg. 1 L5-7), clients in
  // parallel.  The update's serialization/compression rides the same
  // fan-out instead of a serial post-pass, and borrows the client's delta.
  std::vector<double> train_seconds(cohort.size(), 0.0);
  auto run_client = [&](std::size_t i) {
    const int id = cohort[i];
    SimLink& link = links_[static_cast<std::size_t>(id)];
    Message& rx = rx_[i];
    link.transmit(broadcast, rx);
    const auto t_train = std::chrono::steady_clock::now();
    clients_[static_cast<std::size_t>(id)]->run_round(
        rx.payload, round_, config_.local_steps, schedule_step_base_,
        updates_[i]);
    train_seconds[i] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_train)
            .count();
    Message up;
    up.type = MessageType::kClientUpdate;
    up.round = round_;
    up.sender = static_cast<std::uint32_t>(id);
    up.codec = updates_[i].post.codec;
    up.payload_view = updates_[i].delta;
    up.metadata = updates_[i].metrics;
    link.transmit(up, rx);  // rx now holds the received update
  };
  if (config_.parallel_clients && cohort.size() > 1) {
    global_pool().parallel_for(cohort.size(), run_client);
  } else {
    for (std::size_t i = 0; i < cohort.size(); ++i) run_client(i);
  }

  // Ordered (cohort-index) combine keeps metrics and losses bit-identical
  // between the serial and parallel fan-outs.
  std::vector<MetricDict> client_metrics(cohort.size());
  std::vector<double> weights(cohort.size());
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    client_metrics[i] = rx_[i].metadata;
    weights[i] = static_cast<double>(updates_[i].tokens);
    record.tokens_this_round += updates_[i].tokens;
    record.mean_train_loss +=
        updates_[i].mean_train_loss / static_cast<double>(cohort.size());
  }

  // Aggregate (Alg. 1 L8): element-wise mean of pseudo-gradients through
  // the configured topology; secure aggregation masks first and forces PS.
  // The mean is computed in place over the received payloads, and
  // `pseudo_grad` is a view — no full-model copy on this path.
  std::span<const float> pseudo_grad;
  double sim_comm_seconds = 0.0;
  std::uint64_t collective_bytes = 0;
  if (config_.secure_aggregation && cohort.size() > 1) {
    SecureAggregator sec(static_cast<int>(cohort.size()),
                         hash_combine(config_.seed, round_));
    auto mask_client = [&](std::size_t i) {
      sec.mask_in_place(static_cast<int>(i), rx_[i].payload);
    };
    if (config_.parallel_clients && cohort.size() > 1) {
      global_pool().parallel_for(cohort.size(), mask_client);
    } else {
      for (std::size_t i = 0; i < cohort.size(); ++i) mask_client(i);
    }
    std::vector<std::span<const float>> masked(cohort.size());
    for (std::size_t i = 0; i < cohort.size(); ++i) masked[i] = rx_[i].payload;
    pseudo_grad_.resize(masked.front().size());
    SecureAggregator::sum_into(masked, pseudo_grad_);
    const float inv = 1.0f / static_cast<float>(cohort.size());
    kernels::scale_inplace(pseudo_grad_.data(), inv, pseudo_grad_.size());
    pseudo_grad = pseudo_grad_;
    const auto report = CollectiveReport{
        Topology::kParameterServer, static_cast<int>(cohort.size()),
        static_cast<std::uint64_t>(cohort.size()) * pseudo_grad_.size() *
            sizeof(float),
        2ull * cohort.size() * pseudo_grad_.size() * sizeof(float), 0.0};
    collective_bytes = report.total_bytes;
    sim_comm_seconds = static_cast<double>(report.bottleneck_bytes) /
                       (config_.bandwidth_mbps * 1024.0 * 1024.0);
  } else if (cohort.size() > 1) {
    std::vector<std::span<float>> spans;
    spans.reserve(cohort.size());
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      spans.emplace_back(rx_[i].payload);
    }
    const CollectiveReport report =
        collective_mean(config_.topology, spans, config_.bandwidth_mbps);
    pseudo_grad = rx_.front().payload;  // every buffer now holds the mean
    sim_comm_seconds = report.seconds;
    collective_bytes = report.total_bytes;
  } else {
    pseudo_grad = rx_.front().payload;
  }

  // ServerOpt (Alg. 1 L9).
  record.update_norm =
      kernels::l2_norm(pseudo_grad.data(), pseudo_grad.size());
  server_opt_->apply(global_params_, pseudo_grad);

  // AggMetrics (L10) and Checkpoint (L11).
  record.client_metrics = aggregate_metrics(client_metrics, weights);
  if (config_.checkpoint_every > 0 &&
      round_ % static_cast<std::uint32_t>(config_.checkpoint_every) == 0) {
    checkpoints_.save(round_, global_params_);
  }

  // Wire bytes: broadcast + update message bytes through Agg links plus the
  // aggregation collective's fabric traffic.
  std::uint64_t link_bytes_after = 0;
  for (const auto& link : links_) link_bytes_after += link.stats().wire_bytes;
  record.comm_bytes = (link_bytes_after - link_bytes_before) + collective_bytes;

  record.sim_comm_seconds = sim_comm_seconds;
  record.sim_local_seconds =
      static_cast<double>(config_.local_steps) / config_.sim_throughput_bps;
  for (const double s : train_seconds) record.wall_train_seconds += s;
  record.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_round)
          .count();

  PHOTON_LOG_INFO("aggregator",
                  "round %u: K=%zu loss %.4f update-norm %.4f",
                  round_, cohort.size(), record.mean_train_loss,
                  record.update_norm);

  history_.add(record);
  ++round_;
  schedule_step_base_ += config_.local_steps;
  return record;
}

void Aggregator::record_eval(double perplexity) {
  if (history_.empty()) {
    throw std::runtime_error("Aggregator::record_eval: no rounds yet");
  }
  history_.last_mutable().eval_perplexity = perplexity;
}

bool Aggregator::restore_latest_checkpoint() {
  const auto ckpt = checkpoints_.latest();
  if (!ckpt.has_value()) return false;
  if (ckpt->params.size() != global_params_.size()) return false;
  global_params_ = ckpt->params;
  round_ = ckpt->round + 1;
  return true;
}

}  // namespace photon
