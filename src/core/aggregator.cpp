#include "core/aggregator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "comm/collective.hpp"
#include "comm/compression.hpp"
#include "comm/message.hpp"
#include "comm/secure_agg.hpp"
#include "tensor/kernels.hpp"
#include "util/logging.hpp"
#include "util/serialization.hpp"
#include "util/threadpool.hpp"

namespace photon {

Aggregator::Aggregator(const ModelConfig& model, AggregatorConfig config,
                       std::unique_ptr<ServerOpt> server_opt,
                       std::vector<std::unique_ptr<LLMClient>> clients,
                       std::uint64_t init_seed)
    : model_config_(model),
      config_(std::move(config)),
      server_opt_(std::move(server_opt)),
      clients_(std::move(clients)),
      sampler_(static_cast<int>(clients_.size()), config_.seed),
      checkpoints_(config_.checkpoint_dir) {
  if (clients_.empty()) {
    throw std::invalid_argument("Aggregator: no clients");
  }
  if (server_opt_ == nullptr) {
    throw std::invalid_argument("Aggregator: null server optimizer");
  }
  if (config_.local_steps <= 0) {
    throw std::invalid_argument("Aggregator: local_steps must be > 0");
  }
  if (config_.checkpoint_every < 0) {
    throw std::invalid_argument("Aggregator: checkpoint_every must be >= 0");
  }
  if (config_.round_deadline_s < 0.0) {
    throw std::invalid_argument("Aggregator: round_deadline_s must be >= 0");
  }
  if (config_.min_cohort_fraction < 0.0 || config_.min_cohort_fraction > 1.0) {
    throw std::invalid_argument(
        "Aggregator: min_cohort_fraction must be in [0, 1]");
  }
  if (config_.max_cohort_retries < 0) {
    throw std::invalid_argument("Aggregator: max_cohort_retries must be >= 0");
  }
  for (const auto& c : clients_) {
    if (c->config().model.num_params() != model_config_.num_params()) {
      throw std::invalid_argument("Aggregator: client/global model mismatch");
    }
  }
  links_.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    links_.emplace_back("agg<->client" + std::to_string(i),
                        config_.link_bandwidth_gbps);
    // Chunked encode/decode work may use the pool; when the round is
    // already fanned out across it, transmits degrade to inline (nesting
    // policy) and the bits are identical either way.
    links_.back().set_thread_pool(&global_pool());
    links_.back().set_retry_policy(config_.retry);
    links_.back().set_metrics(config_.metrics);
    links_.back().set_trace_context(
        {config_.tracer, static_cast<std::int32_t>(i), 0.0});
  }
  client_rounds_.assign(clients_.size(), 0);
  if (config_.metrics != nullptr) {
    // Publishes the kernels.simd_variant gauge (resolved SIMD dispatch:
    // 0=scalar, 1=avx2, 2=avx512) plus the per-kernel FLOPs counters.
    kernels::set_kernel_metrics(config_.metrics);
    obs_.straggler_cuts = config_.metrics->counter("round.straggler_cuts");
    obs_.crashes = config_.metrics->counter("round.crashes");
    obs_.link_failures = config_.metrics->counter("round.link_failures");
    obs_.cohort_retries = config_.metrics->counter("round.cohort_retries");
    obs_.tokens = config_.metrics->counter("round.tokens");
    obs_.rounds = config_.metrics->counter("round.completed");
    obs_.tokens_per_sim_second =
        config_.metrics->gauge("round.tokens_per_sim_second");
    obs_.client_sim_seconds =
        config_.metrics->histogram("client.sim_round_seconds");
  }

  // InitModel (Alg. 1 L2): the server initializes the global parameters.
  GptModel init(model_config_, init_seed);
  global_params_.assign(init.params().begin(), init.params().end());
}

RoundRecord Aggregator::run_round() {
  const auto t_round = std::chrono::steady_clock::now();
  obs::Tracer* tracer = config_.tracer;
  const bool tracing = tracer != nullptr && tracer->sampled(round_);
  const obs::RealTimer round_timer(tracing);
  const double t0 = sim_now_;  // sim timestamp this round starts at
  const int k = config_.clients_per_round > 0
                    ? config_.clients_per_round
                    : static_cast<int>(clients_.size());

  LinkStats agg_before;  // summed link stats at round start, for deltas
  for (const auto& link : links_) {
    const LinkStats& s = link.stats();
    agg_before.wire_bytes += s.wire_bytes;
    agg_before.retries += s.retries;
    agg_before.corrupt_chunks += s.corrupt_chunks;
    agg_before.backoff_seconds += s.backoff_seconds;
  }

  RoundRecord record;
  record.round = round_;

  // Per-slot outcome of one cohort attempt.  kOk slots are the survivors
  // whose updates aggregate; everything else is dropped from the round.
  enum class SlotStatus { kOk, kCrashed, kLinkFailed, kLate };

  std::vector<int> cohort;
  std::vector<SlotStatus> status;
  std::vector<char> trained;           // local training ran (data consumed)
  std::vector<char> streamed;          // update held as a wire view, not fp32
  std::vector<double> train_seconds;   // measured wall time in training
  std::vector<double> sim_seconds;     // simulated per-client round time
  std::vector<std::size_t> survivors;  // cohort slots with status kOk

  // Cohort-attempt loop: a round that loses quorum is retried with a
  // freshly salted cohort (Alg. 1's sampling, salted by the attempt index)
  // rather than aborting the run.
  for (std::uint32_t attempt = 0;; ++attempt) {
    cohort = sampler_.sample(k, round_, attempt);
    if (cohort.empty()) {
      throw std::runtime_error("Aggregator::run_round: no available clients");
    }
    if (rx_.size() < cohort.size()) rx_.resize(cohort.size());
    if (wire_rx_.size() < cohort.size()) wire_rx_.resize(cohort.size());
    if (updates_.size() < cohort.size()) updates_.resize(cohort.size());
    status.assign(cohort.size(), SlotStatus::kOk);
    trained.assign(cohort.size(), 0);
    streamed.assign(cohort.size(), 0);
    train_seconds.assign(cohort.size(), 0.0);
    sim_seconds.assign(cohort.size(), 0.0);

    // One broadcast message borrows the global parameters; every client
    // link encodes straight from that buffer, so broadcasting to K clients
    // makes zero copies of the model beyond the wire itself.
    Message broadcast;
    broadcast.type = MessageType::kModelBroadcast;
    broadcast.round = round_;
    broadcast.sender = 0;
    broadcast.payload_view = global_params_;
    broadcast.metadata["local_steps"] = config_.local_steps;

    // Broadcast + local training + update return (Alg. 1 L5-7), clients in
    // parallel.  Every fault decision is a pure function of
    // (round, client, attempt), and failures only write this slot's state,
    // so the fan-out is bit-identical serial vs parallel.
    auto run_client = [&](std::size_t i) {
      const int id = cohort[i];
      SimLink& link = links_[static_cast<std::size_t>(id)];
      Message& rx = rx_[i];
      const LinkStats before = link.stats();
      ClientRoundFault fault;
      if (fault_hook_) fault = fault_hook_(round_, id, attempt);
      const double straggle = std::max(1.0, fault.straggle_factor);
      const double train_sim = straggle *
                               static_cast<double>(config_.local_steps) /
                               config_.sim_throughput_bps;
      // Simulated seconds this client has spent on its link since the slot
      // started (transfers + retry backoff).
      const auto sim_elapsed = [&]() {
        const LinkStats& now = link.stats();
        return (now.transfer_seconds - before.transfer_seconds) +
               (now.backoff_seconds - before.backoff_seconds);
      };
      const auto mark = [&](obs::SpanKind kind, double begin, double end,
                            std::uint64_t real_ns) {
        tracer->record({kind, round_, id, static_cast<std::int32_t>(attempt),
                        begin, end, real_ns});
      };
      link.set_trace_sim_base(t0);
      const obs::RealTimer bcast_timer(tracing);
      try {
        link.transmit(broadcast, rx);
      } catch (const TransmitError&) {
        status[i] = SlotStatus::kLinkFailed;
        sim_seconds[i] = sim_elapsed();
        if (tracing) {
          mark(obs::SpanKind::kBroadcast, t0, t0 + sim_seconds[i],
               bcast_timer.ns());
        }
        return;
      }
      const double bcast_end = t0 + sim_elapsed();
      if (tracing) {
        mark(obs::SpanKind::kBroadcast, t0, bcast_end, bcast_timer.ns());
      }
      if (fault.crash) {
        // Client dies holding the broadcast, before training starts: its
        // data stream does not advance and no update comes back.
        status[i] = SlotStatus::kCrashed;
        sim_seconds[i] = sim_elapsed();
        if (tracing) mark(obs::SpanKind::kCrash, bcast_end, bcast_end, 0);
        return;
      }
      if (config_.round_deadline_s > 0.0 &&
          sim_elapsed() + train_sim > config_.round_deadline_s) {
        // Known-too-slow straggler is cut before training (no data used).
        // The span covers the sim interval the round still charges to the
        // cut client, so trace attribution of round time stays complete.
        status[i] = SlotStatus::kLate;
        sim_seconds[i] = sim_elapsed() + train_sim;
        if (tracing) {
          mark(obs::SpanKind::kStragglerCut, bcast_end, t0 + sim_seconds[i],
               0);
        }
        return;
      }
      clients_[static_cast<std::size_t>(id)]->set_trace(
          {tracing ? tracer : nullptr, round_, bcast_end,
           train_sim / static_cast<double>(config_.local_steps)});
      const auto t_train = std::chrono::steady_clock::now();
      const obs::RealTimer train_timer(tracing);
      clients_[static_cast<std::size_t>(id)]->run_round(
          rx.payload, round_, config_.local_steps, schedule_step_base_,
          updates_[i]);
      trained[i] = 1;
      train_seconds[i] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t_train)
              .count();
      const double train_end = bcast_end + train_sim;
      if (tracing) {
        mark(obs::SpanKind::kLocalTrain, bcast_end, train_end,
             train_timer.ns());
      }
      Message up;
      up.type = MessageType::kClientUpdate;
      up.round = round_;
      up.sender = static_cast<std::uint32_t>(id);
      up.codec = updates_[i].post.codec;
      up.payload_view = updates_[i].delta;
      up.metadata = updates_[i].metrics;
      // A quantized update's wire CRC covers the *compressed* chunk bytes,
      // so the return transfer is validated without decompressing: the wire
      // image is retained and the fan-in below dequantizes-and-accumulates
      // it chunk by chunk.  Secure aggregation masks fp32 payloads and must
      // materialize; lossless codecs keep the classic decode path.
      const Codec* up_codec = codec_by_name(up.codec);
      const bool stream = !config_.secure_aggregation &&
                          up_codec != nullptr && up_codec->quant_bits() != 0;
      link.set_trace_sim_base(train_end);
      const obs::RealTimer up_timer(tracing);
      try {
        if (stream) {
          link.transmit_wire(up, rx, wire_rx_[i]);
          streamed[i] = 1;
        } else {
          link.transmit(up, rx);  // rx now holds the received update
        }
      } catch (const TransmitError&) {
        status[i] = SlotStatus::kLinkFailed;
        sim_seconds[i] = sim_elapsed() + train_sim;
        if (tracing) {
          mark(obs::SpanKind::kUpdateReturn, train_end, t0 + sim_seconds[i],
               up_timer.ns());
        }
        return;
      }
      sim_seconds[i] = sim_elapsed() + train_sim;
      if (tracing) {
        mark(obs::SpanKind::kUpdateReturn, train_end, t0 + sim_seconds[i],
             up_timer.ns());
      }
      if (config_.round_deadline_s > 0.0 &&
          sim_seconds[i] > config_.round_deadline_s) {
        status[i] = SlotStatus::kLate;  // update arrived past the deadline
        if (tracing) {
          mark(obs::SpanKind::kStragglerCut, t0 + sim_seconds[i],
               t0 + sim_seconds[i], 0);
        }
      }
    };
    if (config_.parallel_clients && cohort.size() > 1) {
      global_pool().parallel_for(cohort.size(), run_client);
    } else {
      for (std::size_t i = 0; i < cohort.size(); ++i) run_client(i);
    }

    // Serial bookkeeping in cohort order keeps everything deterministic.
    survivors.clear();
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      // Data-stream position advances whenever training ran, even if the
      // update was then dropped — recovery must replay the same reads.
      if (trained[i]) ++client_rounds_[static_cast<std::size_t>(cohort[i])];
      switch (status[i]) {
        case SlotStatus::kOk: survivors.push_back(i); break;
        case SlotStatus::kCrashed:
          ++record.crashed_clients;
          obs_.crashes.add();
          break;
        case SlotStatus::kLinkFailed:
          ++record.link_failed_clients;
          obs_.link_failures.add();
          break;
        case SlotStatus::kLate:
          ++record.straggler_drops;
          obs_.straggler_cuts.add();
          break;
      }
      obs_.client_sim_seconds.observe(sim_seconds[i]);
    }

    const auto quorum = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(
               config_.min_cohort_fraction *
               static_cast<double>(cohort.size()))));
    if (survivors.size() >= quorum) break;
    if (static_cast<int>(attempt) >= config_.max_cohort_retries) {
      throw std::runtime_error(
          "Aggregator::run_round: quorum lost in round " +
          std::to_string(round_) + " after " + std::to_string(attempt + 1) +
          " cohort attempt(s)");
    }
    ++record.cohort_retries;
    obs_.cohort_retries.add();
    PHOTON_LOG_WARN("aggregator",
                    "round %u attempt %u: %zu/%zu survivors below quorum "
                    "%zu; resampling cohort",
                    round_, attempt, survivors.size(), cohort.size(), quorum);
  }

  record.participants = cohort;
  record.survivors = static_cast<int>(survivors.size());
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    if (status[i] != SlotStatus::kOk) {
      record.dropped_clients.push_back(cohort[i]);
    }
    record.sim_slowest_client_seconds =
        std::max(record.sim_slowest_client_seconds, sim_seconds[i]);
  }

  // Ordered (cohort-index) combine over the SURVIVING cohort keeps metrics
  // and losses bit-identical between the serial and parallel fan-outs; the
  // mean is reweighted to the survivors (1/|S| instead of 1/K).
  const std::size_t n_agg = survivors.size();
  std::vector<MetricDict> client_metrics(n_agg);
  std::vector<double> weights(n_agg);
  for (std::size_t j = 0; j < n_agg; ++j) {
    const std::size_t i = survivors[j];
    client_metrics[j] = rx_[i].metadata;
    weights[j] = static_cast<double>(updates_[i].tokens);
    record.tokens_this_round += updates_[i].tokens;
    record.mean_train_loss +=
        updates_[i].mean_train_loss / static_cast<double>(n_agg);
  }

  // A partial cohort breaks the static ring schedule AR/RAR assume (a dead
  // peer would stall the ring), so those topologies degrade to PS
  // accounting for the round.  Secure aggregation already forces PS.
  Topology topology = config_.topology;
  if (n_agg < cohort.size() && !config_.secure_aggregation &&
      topology != Topology::kParameterServer) {
    topology = Topology::kParameterServer;
    record.topology_fallback = true;
  }

  // The streamed fan-in applies when every surviving update arrived as a
  // retained quantized wire image.  A mixed cohort (possible only with
  // heterogeneous per-client codecs) materializes the streamed survivors
  // into fp32 first and takes the classic collective below.
  bool all_streamed = n_agg > 0;
  bool any_streamed = false;
  for (std::size_t j = 0; j < n_agg; ++j) {
    if (streamed[survivors[j]]) {
      any_streamed = true;
    } else {
      all_streamed = false;
    }
  }
  if (any_streamed && !all_streamed) {
    for (std::size_t j = 0; j < n_agg; ++j) {
      const std::size_t i = survivors[j];
      if (!streamed[i]) continue;
      const WireView& v = wire_rx_[i];
      const Codec* codec = codec_by_name(v.codec);
      rx_[i].payload.resize(static_cast<std::size_t>(v.elems));
      auto* out8 = reinterpret_cast<std::uint8_t*>(rx_[i].payload.data());
      for (std::size_t c = 0; c < v.n_chunks(); ++c) {
        codec->decompress_into(v.chunk(c),
                               {out8 + v.raw_off(c), v.raw_len(c)});
      }
    }
  }

  // Aggregate (Alg. 1 L8): element-wise mean of surviving pseudo-gradients
  // through the (possibly degraded) topology; secure aggregation masks
  // first.  The mean is computed in place over the received payloads, and
  // `pseudo_grad` is a view — no full-model copy on this path.
  std::span<const float> pseudo_grad;
  double sim_comm_seconds = 0.0;
  std::uint64_t collective_bytes = 0;
  std::vector<std::uint64_t> dequant_real_ns;  // per chunk, streamed path
  const obs::RealTimer collective_timer(tracing);
  if (config_.secure_aggregation && n_agg > 1) {
    SecureAggregator sec(static_cast<int>(n_agg),
                         hash_combine(config_.seed, round_));
    auto mask_client = [&](std::size_t j) {
      sec.mask_in_place(static_cast<int>(j), rx_[survivors[j]].payload);
    };
    if (config_.parallel_clients && n_agg > 1) {
      global_pool().parallel_for(n_agg, mask_client);
    } else {
      for (std::size_t j = 0; j < n_agg; ++j) mask_client(j);
    }
    std::vector<std::span<const float>> masked(n_agg);
    for (std::size_t j = 0; j < n_agg; ++j) {
      masked[j] = rx_[survivors[j]].payload;
    }
    pseudo_grad_.resize(masked.front().size());
    SecureAggregator::sum_into(masked, pseudo_grad_);
    const float inv = 1.0f / static_cast<float>(n_agg);
    kernels::scale_inplace(pseudo_grad_.data(), inv, pseudo_grad_.size());
    pseudo_grad = pseudo_grad_;
    const auto report = CollectiveReport{
        Topology::kParameterServer, static_cast<int>(n_agg),
        static_cast<std::uint64_t>(n_agg) * pseudo_grad_.size() *
            sizeof(float),
        2ull * n_agg * pseudo_grad_.size() * sizeof(float), 0.0};
    collective_bytes = report.total_bytes;
    sim_comm_seconds = static_cast<double>(report.bottleneck_bytes) /
                       (config_.bandwidth_mbps * 1024.0 * 1024.0);
  } else if (all_streamed) {
    // Streamed dequantize-and-accumulate (DESIGN.md §11): the fan-in walks
    // the retained wire images chunk by chunk on the pool — each chunk is
    // dequantized into thread-local scratch and folded into the mean as it
    // "arrives", so no survivor's full fp32 update is ever materialized.
    // Per element the survivors accumulate in cohort order into a double
    // and narrow once — the exact arithmetic of mean_rows_pd — so the mean
    // is bit-identical to the materialized collective at any thread count.
    const WireView& head = wire_rx_[survivors.front()];
    const std::size_t n = static_cast<std::size_t>(head.elems);
    const std::size_t n_chunks = head.n_chunks();
    pseudo_grad_.resize(n);
    dequant_real_ns.assign(n_chunks, 0);
    const double inv = 1.0 / static_cast<double>(n_agg);
    auto accum_chunk = [&](std::size_t c) {
      const obs::RealTimer chunk_timer(tracing);
      const std::size_t len = head.raw_len(c) / sizeof(float);
      std::vector<float> tmp(len);
      std::vector<double> acc(len, 0.0);
      for (std::size_t j = 0; j < n_agg; ++j) {
        const WireView& v = wire_rx_[survivors[j]];
        const Codec* codec = codec_by_name(v.codec);
        codec->decompress_into(
            v.chunk(c), {reinterpret_cast<std::uint8_t*>(tmp.data()),
                         len * sizeof(float)});
        for (std::size_t e = 0; e < len; ++e) {
          acc[e] += static_cast<double>(tmp[e]);
        }
      }
      float* out = pseudo_grad_.data() + head.raw_off(c) / sizeof(float);
      for (std::size_t e = 0; e < len; ++e) {
        out[e] = static_cast<float>(acc[e] * inv);
      }
      dequant_real_ns[c] = chunk_timer.ns();
    };
    if (config_.parallel_clients && n_chunks > 1) {
      global_pool().parallel_for(n_chunks, accum_chunk);
    } else {
      for (std::size_t c = 0; c < n_chunks; ++c) accum_chunk(c);
    }
    pseudo_grad = pseudo_grad_;
    if (n_agg > 1) {
      // Topology accounting on the *quantized* bytes: the collective moves
      // q8/q4 wire chunks, not fp32 buffers, which is where the wall-time
      // win over the B.1 cost model comes from.
      std::uint64_t wire_sum = 0;
      for (const std::uint64_t l : head.lens) wire_sum += l;
      const auto k64 = static_cast<std::uint64_t>(n_agg);
      std::uint64_t bottleneck = 0;
      switch (topology) {
        case Topology::kParameterServer:
          bottleneck = k64 * wire_sum;
          collective_bytes = 2ull * k64 * wire_sum;
          break;
        case Topology::kAllReduce:
          bottleneck = (k64 - 1) * wire_sum;
          collective_bytes = k64 * (k64 - 1) * wire_sum;
          break;
        case Topology::kRingAllReduce:
          bottleneck = 2ull * wire_sum * (k64 - 1) / k64;
          collective_bytes = bottleneck * k64;
          break;
      }
      sim_comm_seconds = static_cast<double>(bottleneck) /
                         (config_.bandwidth_mbps * 1024.0 * 1024.0);
    }
  } else if (n_agg > 1) {
    std::vector<std::span<float>> spans;
    spans.reserve(n_agg);
    for (std::size_t j = 0; j < n_agg; ++j) {
      spans.emplace_back(rx_[survivors[j]].payload);
    }
    const CollectiveReport report =
        collective_mean(topology, spans, config_.bandwidth_mbps);
    pseudo_grad = rx_[survivors.front()].payload;  // buffers hold the mean
    sim_comm_seconds = report.seconds;
    collective_bytes = report.total_bytes;
  } else {
    pseudo_grad = rx_[survivors.front()].payload;
  }

  const std::uint64_t collective_real_ns = collective_timer.ns();

  // The collective starts once the slowest surviving client is in; the
  // round's sim end is its completion.  The sim clock advances whether or
  // not tracing is on — it is part of the deterministic round state.
  const double t_collective = t0 + record.sim_slowest_client_seconds;
  const double t_round_end = t_collective + sim_comm_seconds;
  if (tracing) {
    tracer->record({obs::SpanKind::kCollective, round_, obs::kAggregatorActor,
                    static_cast<std::int32_t>(n_agg), t_collective,
                    t_round_end, collective_real_ns});
  }
  if (tracing && !dequant_real_ns.empty()) {
    // Streamed chunks pipeline inside the collective transfer window: each
    // chunk's dequant+accumulate span sits at that chunk's byte share of
    // the quantized collective, so trace viewers show decode work
    // overlapping the transfer instead of serialized after it.  Sim
    // placement is a pure function of the chunk lengths — deterministic.
    const WireView& head = wire_rx_[survivors.front()];
    std::uint64_t wire_sum = 0;
    for (const std::uint64_t l : head.lens) wire_sum += l;
    double cum = 0.0;
    for (std::size_t c = 0; c < dequant_real_ns.size(); ++c) {
      const double share =
          wire_sum > 0 ? static_cast<double>(head.lens[c]) /
                             static_cast<double>(wire_sum)
                       : 0.0;
      const double begin = t_collective + sim_comm_seconds * cum;
      cum += share;
      const double end = t_collective + sim_comm_seconds * cum;
      tracer->record({obs::SpanKind::kDequantAccum, round_,
                      obs::kAggregatorActor, static_cast<std::int32_t>(c),
                      begin, end, dequant_real_ns[c]});
    }
  }

  record.update_norm =
      kernels::l2_norm(pseudo_grad.data(), pseudo_grad.size());

  // ServerOpt (Alg. 1 L9), bracketed by the write-ahead journal: `begin` is
  // durable before the global model mutates, `commit` only once this
  // round's checkpoint is.  A crash between the two leaves a dangling
  // begin, and recovery restarts from the last commit — so ServerOpt is
  // applied exactly once per round of the final timeline.
  const obs::RealTimer server_opt_timer(tracing);
  checkpoints_.journal_begin(round_);
  server_opt_->apply(global_params_, pseudo_grad);
  if (tracing) {
    // Server-side compute is not simulated, so ServerOpt and Checkpoint are
    // sim-zero-width marks at round end carrying measured real durations.
    tracer->record({obs::SpanKind::kServerOpt, round_, obs::kAggregatorActor,
                    -1, t_round_end, t_round_end, server_opt_timer.ns()});
  }

  // AggMetrics (L10) and Checkpoint (L11) with recovery metadata.
  record.client_metrics = aggregate_metrics(client_metrics, weights);
  if (config_.checkpoint_every > 0 &&
      round_ % static_cast<std::uint32_t>(config_.checkpoint_every) == 0) {
    const obs::RealTimer ckpt_timer(tracing);
    Checkpoint ckpt;
    ckpt.round = round_;
    ckpt.params = global_params_;
    ckpt.schedule_step_base = schedule_step_base_ + config_.local_steps;
    ckpt.client_trained_rounds = client_rounds_;
    BinaryWriter w;
    server_opt_->save_state(w);
    ckpt.server_opt_state = w.take();
    // Error-feedback residuals are part of the deterministic client state:
    // recovery must hand each client the exact residual it carried, or the
    // post-restore timeline diverges from an uninterrupted run.
    ckpt.client_ef_residuals.reserve(clients_.size());
    for (const auto& c : clients_) {
      ckpt.client_ef_residuals.push_back(c->ef_residual());
    }
    checkpoints_.save(std::move(ckpt));
    checkpoints_.journal_commit(round_);
    if (tracing) {
      tracer->record({obs::SpanKind::kCheckpoint, round_,
                      obs::kAggregatorActor, -1, t_round_end, t_round_end,
                      ckpt_timer.ns()});
    }
  }

  // Wire bytes: broadcast + update message bytes through Agg links (all
  // attempts, including retransmissions) plus the collective's fabric
  // traffic; the other deltas surface the round's fault telemetry.
  LinkStats agg_after;
  for (const auto& link : links_) {
    const LinkStats& s = link.stats();
    agg_after.wire_bytes += s.wire_bytes;
    agg_after.retries += s.retries;
    agg_after.corrupt_chunks += s.corrupt_chunks;
    agg_after.backoff_seconds += s.backoff_seconds;
  }
  record.comm_bytes =
      (agg_after.wire_bytes - agg_before.wire_bytes) + collective_bytes;
  record.link_retries = agg_after.retries - agg_before.retries;
  record.corrupt_chunks = agg_after.corrupt_chunks - agg_before.corrupt_chunks;
  record.backoff_seconds =
      agg_after.backoff_seconds - agg_before.backoff_seconds;

  record.sim_comm_seconds = sim_comm_seconds;
  record.sim_local_seconds =
      static_cast<double>(config_.local_steps) / config_.sim_throughput_bps;
  for (const double s : train_seconds) record.wall_train_seconds += s;
  record.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_round)
          .count();

  if (tracing) {
    tracer->record({obs::SpanKind::kRound, round_, obs::kAggregatorActor,
                    static_cast<std::int32_t>(record.survivors), t0,
                    t_round_end, round_timer.ns()});
  }
  obs_.rounds.add();
  obs_.tokens.add(record.tokens_this_round);
  if (t_round_end > t0) {
    obs_.tokens_per_sim_second.set(
        static_cast<double>(record.tokens_this_round) / (t_round_end - t0));
  }
  sim_now_ = t_round_end;

  PHOTON_LOG_INFO("aggregator",
                  "round %u: K=%zu survivors=%zu loss %.4f update-norm %.4f",
                  round_, cohort.size(), survivors.size(),
                  record.mean_train_loss, record.update_norm);

  history_.add(record);
  ++round_;
  schedule_step_base_ += config_.local_steps;
  return record;
}

void Aggregator::record_eval(double perplexity) {
  if (history_.empty()) {
    throw std::runtime_error("Aggregator::record_eval: no rounds yet");
  }
  history_.last_mutable().eval_perplexity = perplexity;
}

bool Aggregator::restore_latest_checkpoint() {
  // Prefer the journal's last committed round: a higher-numbered ckpt file
  // could exist from a crash mid-save, but only a committed round is known
  // durable and consistent.
  std::optional<Checkpoint> ckpt;
  const std::int64_t committed = checkpoints_.journal_last_committed();
  if (committed >= 0) {
    ckpt = checkpoints_.at_round(static_cast<std::uint32_t>(committed));
  }
  if (!ckpt.has_value()) ckpt = checkpoints_.latest();
  if (!ckpt.has_value()) return false;
  if (ckpt->params.size() != global_params_.size()) return false;

  global_params_ = ckpt->params;
  round_ = ckpt->round + 1;
  // Legacy checkpoints (no metadata) ran with this fixed cadence, so the
  // fallback reconstruction is exact for them.
  schedule_step_base_ =
      ckpt->schedule_step_base >= 0
          ? ckpt->schedule_step_base
          : static_cast<std::int64_t>(round_) * config_.local_steps;
  server_opt_->reset();
  if (!ckpt->server_opt_state.empty()) {
    BinaryReader r(ckpt->server_opt_state);
    server_opt_->load_state(r);
  }
  // Fast-forward fresh client data streams to their recorded positions so
  // post-recovery rounds read the exact tokens an uninterrupted run would.
  // Streams cannot rewind, so only positive deltas apply (an in-process
  // restore that already advanced past the checkpoint keeps its position).
  if (ckpt->client_trained_rounds.size() == clients_.size()) {
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      const std::uint32_t target = ckpt->client_trained_rounds[c];
      if (target > client_rounds_[c]) {
        clients_[c]->fast_forward(target - client_rounds_[c],
                                  config_.local_steps);
        client_rounds_[c] = target;
      }
    }
  }
  // Restore each client's error-feedback residual (empty vectors for
  // clients that had none, or a legacy checkpoint without the field).
  if (ckpt->client_ef_residuals.size() == clients_.size()) {
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      clients_[c]->set_ef_residual(std::move(ckpt->client_ef_residuals[c]));
    }
  }
  checkpoints_.journal_recovered(round_);
  PHOTON_LOG_INFO("aggregator", "recovered at round %u (ckpt %u)", round_,
                  ckpt->round);
  return true;
}

}  // namespace photon
