#include "core/aggregator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>

#include "comm/collective.hpp"
#include "comm/compression.hpp"
#include "comm/message.hpp"
#include "comm/secure_agg.hpp"
#include "tensor/kernels.hpp"
#include "util/logging.hpp"
#include "util/serialization.hpp"
#include "util/threadpool.hpp"

namespace photon {
namespace {

/// Decision-kind tag for the admission-priority hash stream (same pattern
/// as sim/faults.cpp): which clients win a contested admission wave never
/// perturbs any other seeded draw.
constexpr std::uint64_t kAdmitTag = 0xAD317ULL;

/// Decision-kind tag for secagg session seeds: sync sessions key on
/// (seed, tag, round, attempt), async wave sessions on (seed, tag, wave).
constexpr std::uint64_t kSecAggTag = 0x5ECA66ULL;

}  // namespace

Aggregator::Aggregator(const ModelConfig& model, AggregatorConfig config,
                       std::unique_ptr<ServerOpt> server_opt,
                       std::vector<std::unique_ptr<LLMClient>> clients,
                       std::uint64_t init_seed)
    : model_config_(model),
      config_(std::move(config)),
      server_opt_(std::move(server_opt)),
      clients_(std::move(clients)),
      sampler_(static_cast<int>(clients_.size()), config_.seed),
      checkpoints_(config_.checkpoint_dir) {
  if (clients_.empty()) {
    throw std::invalid_argument("Aggregator: no clients");
  }
  if (server_opt_ == nullptr) {
    throw std::invalid_argument("Aggregator: null server optimizer");
  }
  if (config_.local_steps <= 0) {
    throw std::invalid_argument("Aggregator: local_steps must be > 0");
  }
  if (config_.checkpoint_every < 0) {
    throw std::invalid_argument("Aggregator: checkpoint_every must be >= 0");
  }
  if (config_.round_deadline_s < 0.0) {
    throw std::invalid_argument("Aggregator: round_deadline_s must be >= 0");
  }
  if (config_.min_cohort_fraction < 0.0 || config_.min_cohort_fraction > 1.0) {
    throw std::invalid_argument(
        "Aggregator: min_cohort_fraction must be in [0, 1]");
  }
  if (config_.max_cohort_retries < 0) {
    throw std::invalid_argument("Aggregator: max_cohort_retries must be >= 0");
  }
  // Opt-in environment sweep (tools/ci.sh secagg lane): rerun any
  // federation under pairwise-masked aggregation.  An explicit config or
  // the ignore_env pin always wins.
  if (!config_.secure_aggregation && !config_.privacy.ignore_env) {
    if (const char* env = std::getenv("PHOTON_SECAGG");
        env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0')) {
      config_.secure_aggregation = true;
    }
  }
  if (config_.privacy.secagg_threshold_fraction < 0.0 ||
      config_.privacy.secagg_threshold_fraction > 1.0) {
    throw std::invalid_argument(
        "Aggregator: secagg_threshold_fraction must be in [0, 1]");
  }
  if (config_.privacy.secagg_fixed_point_bits < 8 ||
      config_.privacy.secagg_fixed_point_bits > 48) {
    throw std::invalid_argument(
        "Aggregator: secagg_fixed_point_bits must be in [8, 48]");
  }
  if (config_.async.enabled) {
    if (config_.async.buffer_goal < 0 || config_.async.max_in_flight < 0) {
      throw std::invalid_argument(
          "Aggregator: async buffer_goal/max_in_flight must be >= 0");
    }
    if (config_.async.staleness_exponent < 0.0) {
      throw std::invalid_argument(
          "Aggregator: async staleness_exponent must be >= 0");
    }
  }
  for (const auto& c : clients_) {
    if (c->config().model.num_params() != model_config_.num_params()) {
      throw std::invalid_argument("Aggregator: client/global model mismatch");
    }
  }
  links_.reserve(clients_.size());
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    links_.emplace_back("agg<->client" + std::to_string(i),
                        config_.link_bandwidth_gbps);
    // Chunked encode/decode work may use the pool; when the round is
    // already fanned out across it, transmits degrade to inline (nesting
    // policy) and the bits are identical either way.
    links_.back().set_thread_pool(&global_pool());
    links_.back().set_retry_policy(config_.retry);
    links_.back().set_metrics(config_.metrics);
    links_.back().set_trace_context(
        {config_.tracer, static_cast<std::int32_t>(i), 0.0});
  }
  client_rounds_.assign(clients_.size(), 0);
  membership_.assign(clients_.size(), MembershipState::kActive);
  defer_counts_.assign(clients_.size(), 0);
  next_eligible_.assign(clients_.size(), 0.0);
  dispatch_seq_.assign(clients_.size(), 0);
  client_slot_.assign(clients_.size(), -1);
  if (config_.async.enabled) {
    slots_.resize(static_cast<std::size_t>(async_max_in_flight()));
  }
  if (config_.metrics != nullptr) {
    // Publishes the kernels.simd_variant gauge (resolved SIMD dispatch:
    // 0=scalar, 1=avx2, 2=avx512) plus the per-kernel FLOPs counters.
    kernels::set_kernel_metrics(config_.metrics);
    obs_.straggler_cuts = config_.metrics->counter("round.straggler_cuts");
    obs_.crashes = config_.metrics->counter("round.crashes");
    obs_.link_failures = config_.metrics->counter("round.link_failures");
    obs_.cohort_retries = config_.metrics->counter("round.cohort_retries");
    obs_.tokens = config_.metrics->counter("round.tokens");
    obs_.rounds = config_.metrics->counter("round.completed");
    obs_.tokens_per_sim_second =
        config_.metrics->gauge("round.tokens_per_sim_second");
    obs_.client_sim_seconds =
        config_.metrics->histogram("client.sim_round_seconds");
    obs_.async_drains = config_.metrics->counter("round.async.drains");
    obs_.async_accepted = config_.metrics->counter("round.async.accepted");
    obs_.async_discarded = config_.metrics->counter("round.async.discarded");
    obs_.async_deferred = config_.metrics->counter("round.async.deferred");
    obs_.arrivals = config_.metrics->counter("round.async.arrivals");
    obs_.departures = config_.metrics->counter("round.async.departures");
    obs_.async_in_flight = config_.metrics->gauge("round.async.in_flight");
    obs_.async_staleness =
        config_.metrics->histogram("round.async.staleness");
    obs_.secagg_rounds = config_.metrics->counter("privacy.secagg_rounds");
    obs_.share_recoveries =
        config_.metrics->counter("privacy.share_recoveries");
    obs_.dp_epsilon = config_.metrics->gauge("privacy.dp_epsilon");
  }

  // Client-level DP accountant: one Gaussian mechanism per round at the
  // population's worst-case (largest) noise multiplier.
  double dp_sigma = 0.0;
  for (const auto& c : clients_) {
    dp_sigma = std::max(dp_sigma, c->config().dp_noise_multiplier);
  }
  if (dp_sigma > 0.0) {
    accountant_ = std::make_unique<privacy::RdpAccountant>(
        dp_sigma, config_.privacy.dp_delta);
  }

  // InitModel (Alg. 1 L2): the server initializes the global parameters.
  GptModel init(model_config_, init_seed);
  global_params_.assign(init.params().begin(), init.params().end());
}

RoundRecord Aggregator::run_round() {
  return config_.async.enabled ? run_round_async() : run_round_sync();
}

void Aggregator::set_clients_per_round(int k) {
  if (k < 0 || k > population()) {
    throw std::invalid_argument(
        "Aggregator::set_clients_per_round: K must be in [0, population]");
  }
  config_.clients_per_round = k;
}

void Aggregator::set_wire_codec(const std::string& codec) {
  if (codec_by_name(codec) == nullptr) {
    throw std::invalid_argument("Aggregator::set_wire_codec: unknown codec " +
                                codec);
  }
  for (auto& c : clients_) c->set_link_codec(codec);
}

void Aggregator::set_async_limits(int buffer_goal, int max_in_flight) {
  if (buffer_goal < 0 || max_in_flight < 0) {
    throw std::invalid_argument(
        "Aggregator::set_async_limits: limits must be >= 0");
  }
  config_.async.buffer_goal = buffer_goal;
  config_.async.max_in_flight = max_in_flight;
  if (config_.async.enabled) {
    // Grow-only: updates already in flight keep their slots; a lowered cap
    // takes effect through the admission arithmetic, not by dropping slots.
    const auto want = static_cast<std::size_t>(async_max_in_flight());
    if (slots_.size() < want) slots_.resize(want);
  }
}

void Aggregator::set_tracer(obs::Tracer* tracer) {
  config_.tracer = tracer;
  for (std::size_t i = 0; i < links_.size(); ++i) {
    LinkTraceContext ctx = links_[i].trace_context();
    ctx.tracer = tracer;
    links_[i].set_trace_context(ctx);
  }
}

RoundRecord Aggregator::run_round_sync() {
  const auto t_round = std::chrono::steady_clock::now();
  obs::Tracer* tracer = config_.tracer;
  const bool tracing = tracer != nullptr && tracer->sampled(round_);
  const obs::RealTimer round_timer(tracing);
  const double t0 = sim_now_;  // sim timestamp this round starts at
  const int k = config_.clients_per_round > 0
                    ? config_.clients_per_round
                    : static_cast<int>(clients_.size());

  LinkStats agg_before;  // summed link stats at round start, for deltas
  for (const auto& link : links_) {
    const LinkStats& s = link.stats();
    agg_before.wire_bytes += s.wire_bytes;
    agg_before.retries += s.retries;
    agg_before.corrupt_chunks += s.corrupt_chunks;
    agg_before.backoff_seconds += s.backoff_seconds;
  }

  RoundRecord record;
  record.round = round_;
  apply_membership(record);

  // Per-slot outcome of one cohort attempt.  kOk slots are the survivors
  // whose updates aggregate; everything else is dropped from the round.
  enum class SlotStatus { kOk, kCrashed, kLinkFailed, kLate };

  std::vector<int> cohort;
  std::vector<SlotStatus> status;
  std::vector<char> trained;           // local training ran (data consumed)
  std::vector<char> streamed;          // update held as a wire view, not fp32
  std::vector<double> train_seconds;   // measured wall time in training
  std::vector<double> sim_seconds;     // simulated per-client round time
  std::vector<std::size_t> survivors;  // cohort slots with status kOk

  // Pairwise-masking session for the current cohort attempt (DESIGN.md
  // §14); outlives the attempt loop because the surviving attempt's
  // session unmasks the aggregate below.
  std::optional<SecAggSession> secagg;
  KeyExchangeResult ke;
  // Slowest client critical path over attempts that LOST quorum.  The
  // round cannot close before every dispatched client of every attempt has
  // returned or timed out, so this folds into the round end below — it
  // keeps the kRound span covering all attempt spans (the obs attribution
  // invariant) when a retried attempt held the round's slowest straggler.
  double retry_slowest = 0.0;

  // Cohort-attempt loop: a round that loses quorum is retried with a
  // freshly salted cohort (Alg. 1's sampling, salted by the attempt index)
  // rather than aborting the run.
  for (std::uint32_t attempt = 0;; ++attempt) {
    cohort = sampler_.sample(k, round_, attempt);
    if (cohort.empty()) {
      throw std::runtime_error("Aggregator::run_round: no available clients");
    }
    if (rx_.size() < cohort.size()) rx_.resize(cohort.size());
    if (wire_rx_.size() < cohort.size()) wire_rx_.resize(cohort.size());
    if (updates_.size() < cohort.size()) updates_.resize(cohort.size());
    status.assign(cohort.size(), SlotStatus::kOk);
    trained.assign(cohort.size(), 0);
    streamed.assign(cohort.size(), 0);
    train_seconds.assign(cohort.size(), 0.0);
    sim_seconds.assign(cohort.size(), 0.0);

    // Secagg phase 1: simulated key agreement + Shamir share distribution
    // over the cohort's links, BEFORE the broadcast — the fan-out below
    // starts at the key-exchange barrier (all members must hold the roster
    // before anyone's masked update makes sense).  Members whose exchange
    // transmits fail are dropped here and never receive the broadcast.
    secagg.reset();
    ke = {};
    if (config_.secure_aggregation && cohort.size() > 1) {
      secagg.emplace(
          cohort,
          SecAggConfig{config_.privacy.secagg_fixed_point_bits,
                       config_.privacy.secagg_threshold_fraction,
                       hash_combine(hash_combine(config_.seed, kSecAggTag),
                                    hash_combine(round_, attempt))});
      std::vector<SimLink*> ke_links(cohort.size());
      for (std::size_t i = 0; i < cohort.size(); ++i) {
        ke_links[i] = &links_[static_cast<std::size_t>(cohort[i])];
      }
      ke = secagg->run_key_exchange(ke_links, tracer, round_, t0, tracing);
      for (const int pos : ke.failed) {
        const auto p = static_cast<std::size_t>(pos);
        status[p] = SlotStatus::kLinkFailed;
        sim_seconds[p] = ke.member_seconds[p];
      }
      record.sim_privacy_seconds += ke.sim_seconds;
    }
    const double t_start = t0 + ke.sim_seconds;

    // One broadcast message borrows the global parameters; every client
    // link encodes straight from that buffer, so broadcasting to K clients
    // makes zero copies of the model beyond the wire itself.
    Message broadcast;
    broadcast.type = MessageType::kModelBroadcast;
    broadcast.round = round_;
    broadcast.sender = 0;
    broadcast.payload_view = global_params_;
    broadcast.metadata["local_steps"] = config_.local_steps;

    // Broadcast + local training + update return (Alg. 1 L5-7), clients in
    // parallel.  Every fault decision is a pure function of
    // (round, client, attempt), and failures only write this slot's state,
    // so the fan-out is bit-identical serial vs parallel.
    auto run_client = [&](std::size_t i) {
      if (status[i] != SlotStatus::kOk) return;  // dropped at key exchange
      const int id = cohort[i];
      SimLink& link = links_[static_cast<std::size_t>(id)];
      Message& rx = rx_[i];
      const LinkStats before = link.stats();
      ClientRoundFault fault;
      if (fault_hook_) fault = fault_hook_(round_, id, attempt);
      const double straggle = std::max(1.0, fault.straggle_factor);
      const double train_sim = straggle *
                               static_cast<double>(config_.local_steps) /
                               config_.sim_throughput_bps;
      // Simulated seconds this client has spent on its link since the slot
      // started (transfers + retry backoff).
      const auto sim_elapsed = [&]() {
        const LinkStats& now = link.stats();
        return (now.transfer_seconds - before.transfer_seconds) +
               (now.backoff_seconds - before.backoff_seconds);
      };
      const auto mark = [&](obs::SpanKind kind, double begin, double end,
                            std::uint64_t real_ns) {
        tracer->record({kind, round_, id, static_cast<std::int32_t>(attempt),
                        begin, end, real_ns});
      };
      link.set_trace_sim_base(t_start);
      const obs::RealTimer bcast_timer(tracing);
      try {
        link.transmit(broadcast, rx);
      } catch (const TransmitError&) {
        status[i] = SlotStatus::kLinkFailed;
        sim_seconds[i] = sim_elapsed();
        if (tracing) {
          mark(obs::SpanKind::kBroadcast, t_start, t_start + sim_seconds[i],
               bcast_timer.ns());
        }
        return;
      }
      const double bcast_end = t_start + sim_elapsed();
      if (tracing) {
        mark(obs::SpanKind::kBroadcast, t_start, bcast_end, bcast_timer.ns());
      }
      if (fault.crash) {
        // Client dies holding the broadcast, before training starts: its
        // data stream does not advance and no update comes back.
        status[i] = SlotStatus::kCrashed;
        sim_seconds[i] = sim_elapsed();
        if (tracing) mark(obs::SpanKind::kCrash, bcast_end, bcast_end, 0);
        return;
      }
      if (config_.round_deadline_s > 0.0 &&
          sim_elapsed() + train_sim > config_.round_deadline_s) {
        // Known-too-slow straggler is cut before training (no data used).
        // The span covers the sim interval the round still charges to the
        // cut client, so trace attribution of round time stays complete.
        status[i] = SlotStatus::kLate;
        sim_seconds[i] = sim_elapsed() + train_sim;
        if (tracing) {
          mark(obs::SpanKind::kStragglerCut, bcast_end,
               t_start + sim_seconds[i], 0);
        }
        return;
      }
      clients_[static_cast<std::size_t>(id)]->set_trace(
          {tracing ? tracer : nullptr, round_, bcast_end,
           train_sim / static_cast<double>(config_.local_steps)});
      const auto t_train = std::chrono::steady_clock::now();
      const obs::RealTimer train_timer(tracing);
      clients_[static_cast<std::size_t>(id)]->run_round(
          rx.payload, round_, config_.local_steps, schedule_step_base_,
          updates_[i]);
      trained[i] = 1;
      train_seconds[i] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t_train)
              .count();
      const double train_end = bcast_end + train_sim;
      if (tracing) {
        mark(obs::SpanKind::kLocalTrain, bcast_end, train_end,
             train_timer.ns());
      }
      Message up;
      up.type = MessageType::kClientUpdate;
      up.round = round_;
      up.sender = static_cast<std::uint32_t>(id);
      up.codec = updates_[i].post.codec;
      up.payload_view = updates_[i].delta;
      up.metadata = updates_[i].metrics;
      // A quantized update's wire CRC covers the *compressed* chunk bytes,
      // so the return transfer is validated without decompressing: the wire
      // image is retained and the fan-in below dequantizes-and-accumulates
      // it chunk by chunk.  Secure aggregation masks fp32 payloads and must
      // materialize; lossless codecs keep the classic decode path.
      const Codec* up_codec = codec_by_name(up.codec);
      const bool stream = !config_.secure_aggregation &&
                          up_codec != nullptr && up_codec->quant_bits() != 0;
      link.set_trace_sim_base(train_end);
      const obs::RealTimer up_timer(tracing);
      try {
        if (stream) {
          link.transmit_wire(up, rx, wire_rx_[i]);
          streamed[i] = 1;
        } else {
          link.transmit(up, rx);  // rx now holds the received update
        }
      } catch (const TransmitError&) {
        status[i] = SlotStatus::kLinkFailed;
        sim_seconds[i] = sim_elapsed() + train_sim;
        if (tracing) {
          mark(obs::SpanKind::kUpdateReturn, train_end,
               t_start + sim_seconds[i], up_timer.ns());
        }
        return;
      }
      sim_seconds[i] = sim_elapsed() + train_sim;
      if (tracing) {
        mark(obs::SpanKind::kUpdateReturn, train_end, t_start + sim_seconds[i],
             up_timer.ns());
      }
      if (config_.round_deadline_s > 0.0 &&
          sim_seconds[i] > config_.round_deadline_s) {
        status[i] = SlotStatus::kLate;  // update arrived past the deadline
        if (tracing) {
          mark(obs::SpanKind::kStragglerCut, t_start + sim_seconds[i],
               t_start + sim_seconds[i], 0);
        }
      }
    };
    if (config_.parallel_clients && cohort.size() > 1) {
      global_pool().parallel_for(cohort.size(), run_client);
    } else {
      for (std::size_t i = 0; i < cohort.size(); ++i) run_client(i);
    }

    // Serial bookkeeping in cohort order keeps everything deterministic.
    survivors.clear();
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      // Data-stream position advances whenever training ran, even if the
      // update was then dropped — recovery must replay the same reads.
      if (trained[i]) ++client_rounds_[static_cast<std::size_t>(cohort[i])];
      switch (status[i]) {
        case SlotStatus::kOk: survivors.push_back(i); break;
        case SlotStatus::kCrashed:
          ++record.crashed_clients;
          obs_.crashes.add();
          break;
        case SlotStatus::kLinkFailed:
          ++record.link_failed_clients;
          obs_.link_failures.add();
          break;
        case SlotStatus::kLate:
          ++record.straggler_drops;
          obs_.straggler_cuts.add();
          break;
      }
      obs_.client_sim_seconds.observe(sim_seconds[i]);
    }

    auto quorum = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(
               config_.min_cohort_fraction *
               static_cast<double>(cohort.size()))));
    // Secagg folds the Shamir share threshold into the quorum: below it the
    // dropped members' masks cannot be reconstructed (SecAggAbort), so the
    // round goes through the ordinary retry/skip machinery instead.
    if (secagg.has_value()) {
      quorum = std::max(quorum, static_cast<std::size_t>(secagg->threshold()));
    }
    if (survivors.size() >= quorum) break;
    if (static_cast<int>(attempt) >= config_.max_cohort_retries) {
      if (config_.skip_on_quorum_loss) {
        // Clean skipped round: no survivors, so no mean, no server step, no
        // checkpoint — but the round index, LR-schedule base, and sim clock
        // all advance exactly as a completed round's would, keeping the
        // restore-time `round * local_steps` schedule fallback exact.
        record.skipped = true;
        record.participants = cohort;
        record.survivors = 0;
        for (std::size_t i = 0; i < cohort.size(); ++i) {
          record.dropped_clients.push_back(cohort[i]);
          record.sim_slowest_client_seconds =
              std::max(record.sim_slowest_client_seconds, sim_seconds[i]);
        }
        // Client critical paths start at the key-exchange barrier, and a
        // prior attempt's stragglers can outlast this final one.
        record.sim_slowest_client_seconds += ke.sim_seconds;
        record.sim_slowest_client_seconds =
            std::max(record.sim_slowest_client_seconds, retry_slowest);
        record.sim_local_seconds =
            static_cast<double>(config_.local_steps) /
            config_.sim_throughput_bps;
        LinkStats skip_after;
        for (const auto& link : links_) {
          const LinkStats& s = link.stats();
          skip_after.wire_bytes += s.wire_bytes;
          skip_after.retries += s.retries;
          skip_after.corrupt_chunks += s.corrupt_chunks;
          skip_after.backoff_seconds += s.backoff_seconds;
        }
        record.comm_bytes = skip_after.wire_bytes - agg_before.wire_bytes;
        record.link_retries = skip_after.retries - agg_before.retries;
        record.corrupt_chunks =
            skip_after.corrupt_chunks - agg_before.corrupt_chunks;
        record.backoff_seconds =
            skip_after.backoff_seconds - agg_before.backoff_seconds;
        record.wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t_round)
                .count();
        const double t_skip_end = t0 + record.sim_slowest_client_seconds;
        if (tracing) {
          tracer->record({obs::SpanKind::kRound, round_,
                          obs::kAggregatorActor, 0, t0, t_skip_end,
                          round_timer.ns()});
        }
        obs_.rounds.add();
        sim_now_ = t_skip_end;
        // Clients still trained and transmitted noisy updates this round,
        // so the mechanism released and the accountant must compose it.
        account_privacy(record);
        PHOTON_LOG_WARN("aggregator",
                        "round %u skipped: quorum lost after %u attempt(s)",
                        round_, attempt + 1);
        history_.add(record);
        ++round_;
        schedule_step_base_ += config_.local_steps;
        return record;
      }
      throw std::runtime_error(
          "Aggregator::run_round: quorum lost in round " +
          std::to_string(round_) + " after " + std::to_string(attempt + 1) +
          " cohort attempt(s)");
    }
    ++record.cohort_retries;
    obs_.cohort_retries.add();
    for (const double s : sim_seconds) {
      retry_slowest = std::max(retry_slowest, ke.sim_seconds + s);
    }
    PHOTON_LOG_WARN("aggregator",
                    "round %u attempt %u: %zu/%zu survivors below quorum "
                    "%zu; resampling cohort",
                    round_, attempt, survivors.size(), cohort.size(), quorum);
  }

  record.participants = cohort;
  record.survivors = static_cast<int>(survivors.size());
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    if (status[i] != SlotStatus::kOk) {
      record.dropped_clients.push_back(cohort[i]);
    }
    record.sim_slowest_client_seconds =
        std::max(record.sim_slowest_client_seconds, sim_seconds[i]);
  }
  // Under secagg every client's critical path starts at the key-exchange
  // barrier, so the exchange window is charged to the slowest client; a
  // quorum-lost attempt's stragglers can outlast the winning attempt.
  record.sim_slowest_client_seconds += ke.sim_seconds;
  record.sim_slowest_client_seconds =
      std::max(record.sim_slowest_client_seconds, retry_slowest);

  // Ordered (cohort-index) combine over the SURVIVING cohort keeps metrics
  // and losses bit-identical between the serial and parallel fan-outs; the
  // mean is reweighted to the survivors (1/|S| instead of 1/K).
  const std::size_t n_agg = survivors.size();
  std::vector<MetricDict> client_metrics(n_agg);
  std::vector<double> weights(n_agg);
  for (std::size_t j = 0; j < n_agg; ++j) {
    const std::size_t i = survivors[j];
    client_metrics[j] = rx_[i].metadata;
    weights[j] = static_cast<double>(updates_[i].tokens);
    record.tokens_this_round += updates_[i].tokens;
    record.mean_train_loss +=
        updates_[i].mean_train_loss / static_cast<double>(n_agg);
  }

  // A partial cohort breaks the static ring schedule AR/RAR assume (a dead
  // peer would stall the ring), so those topologies degrade to PS
  // accounting for the round.  Secure aggregation already forces PS.
  Topology topology = config_.topology;
  if (n_agg < cohort.size() && !config_.secure_aggregation &&
      topology != Topology::kParameterServer) {
    topology = Topology::kParameterServer;
    record.topology_fallback = true;
  }

  // The streamed fan-in applies when every surviving update arrived as a
  // retained quantized wire image.  A mixed cohort (possible only with
  // heterogeneous per-client codecs) materializes the streamed survivors
  // into fp32 first and takes the classic collective below.
  bool all_streamed = n_agg > 0;
  bool any_streamed = false;
  for (std::size_t j = 0; j < n_agg; ++j) {
    if (streamed[survivors[j]]) {
      any_streamed = true;
    } else {
      all_streamed = false;
    }
  }
  if (any_streamed && !all_streamed) {
    for (std::size_t j = 0; j < n_agg; ++j) {
      const std::size_t i = survivors[j];
      if (!streamed[i]) continue;
      const WireView& v = wire_rx_[i];
      const Codec* codec = codec_by_name(v.codec);
      rx_[i].payload.resize(static_cast<std::size_t>(v.elems));
      auto* out8 = reinterpret_cast<std::uint8_t*>(rx_[i].payload.data());
      for (std::size_t c = 0; c < v.n_chunks(); ++c) {
        codec->decompress_into(v.chunk(c),
                               {out8 + v.raw_off(c), v.raw_len(c)});
      }
    }
  }

  // Aggregate (Alg. 1 L8): element-wise mean of surviving pseudo-gradients
  // through the (possibly degraded) topology; secure aggregation masks
  // first.  The mean is computed in place over the received payloads, and
  // `pseudo_grad` is a view — no full-model copy on this path.
  std::span<const float> pseudo_grad;
  double sim_comm_seconds = 0.0;
  std::uint64_t collective_bytes = 0;
  std::vector<std::uint64_t> dequant_real_ns;  // per chunk, streamed path
  const obs::RealTimer collective_timer(tracing);
  if (secagg.has_value() && n_agg > 0) {
    // Secagg phases 2+3 (DESIGN.md §14): ring-encode + mask every
    // surviving update into a shared mod-2^64 accumulator (wrapping adds
    // commute, so the shard order never matters), reconstruct dropped
    // members' pair masks from survivor shares, then decode the mean.  The
    // server only ever combines masked words; pairwise masks cancel in the
    // wrapped sum bit-exactly.
    const std::size_t n = rx_[survivors.front()].payload.size();
    secagg_acc_.assign(n, 0);
    std::vector<int> surv_pos;
    std::vector<int> drop_pos;
    surv_pos.reserve(n_agg);
    for (std::size_t i = 0; i < cohort.size(); ++i) {
      if (status[i] == SlotStatus::kOk) {
        surv_pos.push_back(static_cast<int>(i));
      } else {
        drop_pos.push_back(static_cast<int>(i));
      }
    }
    for (const int pos : surv_pos) {
      const auto& payload = rx_[static_cast<std::size_t>(pos)].payload;
      if (payload.size() != n) {
        throw std::runtime_error(
            "Aggregator::run_round: secagg update size mismatch");
      }
      secagg->mask_update_into(pos, payload, secagg_acc_,
                               kernels::default_context());
    }
    secagg->recover_dropouts(surv_pos, drop_pos, secagg_acc_,
                             kernels::default_context(), tracer, round_,
                             t0 + record.sim_slowest_client_seconds, tracing);
    pseudo_grad_.resize(n);
    secagg->decode_mean(secagg_acc_, static_cast<int>(n_agg), pseudo_grad_,
                        kernels::default_context());
    pseudo_grad = pseudo_grad_;
    record.secure_round = true;
    record.secagg_dropouts_recovered = static_cast<int>(drop_pos.size());
    shares_reconstructed_total_ += drop_pos.size();
    obs_.secagg_rounds.add();
    if (!drop_pos.empty()) obs_.share_recoveries.add(drop_pos.size());
    const auto report = CollectiveReport{
        Topology::kParameterServer, static_cast<int>(n_agg),
        static_cast<std::uint64_t>(n_agg) * n * sizeof(float),
        2ull * n_agg * n * sizeof(float), 0.0};
    collective_bytes = report.total_bytes;
    sim_comm_seconds = static_cast<double>(report.bottleneck_bytes) /
                       (config_.bandwidth_mbps * 1024.0 * 1024.0);
  } else if (all_streamed) {
    // Streamed dequantize-and-accumulate (DESIGN.md §11): the fan-in walks
    // the retained wire images chunk by chunk on the pool — each chunk is
    // dequantized into thread-local scratch and folded into the mean as it
    // "arrives", so no survivor's full fp32 update is ever materialized.
    // Per element the survivors accumulate in cohort order into a double
    // and narrow once — the exact arithmetic of mean_rows_pd — so the mean
    // is bit-identical to the materialized collective at any thread count.
    const WireView& head = wire_rx_[survivors.front()];
    const std::size_t n = static_cast<std::size_t>(head.elems);
    const std::size_t n_chunks = head.n_chunks();
    pseudo_grad_.resize(n);
    dequant_real_ns.assign(n_chunks, 0);
    const double inv = 1.0 / static_cast<double>(n_agg);
    auto accum_chunk = [&](std::size_t c) {
      const obs::RealTimer chunk_timer(tracing);
      const std::size_t len = head.raw_len(c) / sizeof(float);
      std::vector<float> tmp(len);
      std::vector<double> acc(len, 0.0);
      for (std::size_t j = 0; j < n_agg; ++j) {
        const WireView& v = wire_rx_[survivors[j]];
        const Codec* codec = codec_by_name(v.codec);
        codec->decompress_into(
            v.chunk(c), {reinterpret_cast<std::uint8_t*>(tmp.data()),
                         len * sizeof(float)});
        for (std::size_t e = 0; e < len; ++e) {
          acc[e] += static_cast<double>(tmp[e]);
        }
      }
      float* out = pseudo_grad_.data() + head.raw_off(c) / sizeof(float);
      for (std::size_t e = 0; e < len; ++e) {
        out[e] = static_cast<float>(acc[e] * inv);
      }
      dequant_real_ns[c] = chunk_timer.ns();
    };
    if (config_.parallel_clients && n_chunks > 1) {
      global_pool().parallel_for(n_chunks, accum_chunk);
    } else {
      for (std::size_t c = 0; c < n_chunks; ++c) accum_chunk(c);
    }
    pseudo_grad = pseudo_grad_;
    if (n_agg > 1) {
      // Topology accounting on the *quantized* bytes: the collective moves
      // q8/q4 wire chunks, not fp32 buffers, which is where the wall-time
      // win over the B.1 cost model comes from.
      std::uint64_t wire_sum = 0;
      for (const std::uint64_t l : head.lens) wire_sum += l;
      const auto k64 = static_cast<std::uint64_t>(n_agg);
      std::uint64_t bottleneck = 0;
      switch (topology) {
        case Topology::kParameterServer:
          bottleneck = k64 * wire_sum;
          collective_bytes = 2ull * k64 * wire_sum;
          break;
        case Topology::kAllReduce:
          bottleneck = (k64 - 1) * wire_sum;
          collective_bytes = k64 * (k64 - 1) * wire_sum;
          break;
        case Topology::kRingAllReduce:
          bottleneck = 2ull * wire_sum * (k64 - 1) / k64;
          collective_bytes = bottleneck * k64;
          break;
      }
      sim_comm_seconds = static_cast<double>(bottleneck) /
                         (config_.bandwidth_mbps * 1024.0 * 1024.0);
    }
  } else if (n_agg > 1) {
    std::vector<std::span<float>> spans;
    spans.reserve(n_agg);
    for (std::size_t j = 0; j < n_agg; ++j) {
      spans.emplace_back(rx_[survivors[j]].payload);
    }
    const CollectiveReport report =
        collective_mean(topology, spans, config_.bandwidth_mbps);
    pseudo_grad = rx_[survivors.front()].payload;  // buffers hold the mean
    sim_comm_seconds = report.seconds;
    collective_bytes = report.total_bytes;
  } else {
    pseudo_grad = rx_[survivors.front()].payload;
  }

  const std::uint64_t collective_real_ns = collective_timer.ns();

  // The collective starts once the slowest surviving client is in; the
  // round's sim end is its completion.  The sim clock advances whether or
  // not tracing is on — it is part of the deterministic round state.
  const double t_collective = t0 + record.sim_slowest_client_seconds;
  const double t_round_end = t_collective + sim_comm_seconds;
  if (tracing) {
    tracer->record({obs::SpanKind::kCollective, round_, obs::kAggregatorActor,
                    static_cast<std::int32_t>(n_agg), t_collective,
                    t_round_end, collective_real_ns});
  }
  if (tracing && !dequant_real_ns.empty()) {
    // Streamed chunks pipeline inside the collective transfer window: each
    // chunk's dequant+accumulate span sits at that chunk's byte share of
    // the quantized collective, so trace viewers show decode work
    // overlapping the transfer instead of serialized after it.  Sim
    // placement is a pure function of the chunk lengths — deterministic.
    const WireView& head = wire_rx_[survivors.front()];
    std::uint64_t wire_sum = 0;
    for (const std::uint64_t l : head.lens) wire_sum += l;
    double cum = 0.0;
    for (std::size_t c = 0; c < dequant_real_ns.size(); ++c) {
      const double share =
          wire_sum > 0 ? static_cast<double>(head.lens[c]) /
                             static_cast<double>(wire_sum)
                       : 0.0;
      const double begin = t_collective + sim_comm_seconds * cum;
      cum += share;
      const double end = t_collective + sim_comm_seconds * cum;
      tracer->record({obs::SpanKind::kDequantAccum, round_,
                      obs::kAggregatorActor, static_cast<std::int32_t>(c),
                      begin, end, dequant_real_ns[c]});
    }
  }

  record.update_norm =
      kernels::l2_norm(pseudo_grad.data(), pseudo_grad.size());

  // ServerOpt (Alg. 1 L9), bracketed by the write-ahead journal: `begin` is
  // durable before the global model mutates, `commit` only once this
  // round's checkpoint is.  A crash between the two leaves a dangling
  // begin, and recovery restarts from the last commit — so ServerOpt is
  // applied exactly once per round of the final timeline.
  const obs::RealTimer server_opt_timer(tracing);
  checkpoints_.journal_begin(round_);
  server_opt_->apply(global_params_, pseudo_grad);
  if (tracing) {
    // Server-side compute is not simulated, so ServerOpt and Checkpoint are
    // sim-zero-width marks at round end carrying measured real durations.
    tracer->record({obs::SpanKind::kServerOpt, round_, obs::kAggregatorActor,
                    -1, t_round_end, t_round_end, server_opt_timer.ns()});
  }

  // AggMetrics (L10).
  record.client_metrics = aggregate_metrics(client_metrics, weights);

  // DP accounting composes BEFORE the checkpoint below so a restored
  // accountant already includes this round's mechanism.
  account_privacy(record);

  // Wire bytes: broadcast + update message bytes through Agg links (all
  // attempts, including retransmissions) plus the collective's fabric
  // traffic; the other deltas surface the round's fault telemetry.
  LinkStats agg_after;
  for (const auto& link : links_) {
    const LinkStats& s = link.stats();
    agg_after.wire_bytes += s.wire_bytes;
    agg_after.retries += s.retries;
    agg_after.corrupt_chunks += s.corrupt_chunks;
    agg_after.backoff_seconds += s.backoff_seconds;
  }
  record.comm_bytes =
      (agg_after.wire_bytes - agg_before.wire_bytes) + collective_bytes;
  record.link_retries = agg_after.retries - agg_before.retries;
  record.corrupt_chunks = agg_after.corrupt_chunks - agg_before.corrupt_chunks;
  record.backoff_seconds =
      agg_after.backoff_seconds - agg_before.backoff_seconds;

  record.sim_comm_seconds = sim_comm_seconds;
  record.sim_local_seconds =
      static_cast<double>(config_.local_steps) / config_.sim_throughput_bps;
  for (const double s : train_seconds) record.wall_train_seconds += s;
  record.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_round)
          .count();

  // Advance the sim clock before checkpointing so a state extension that
  // persists it (the autotuner does: post-restore span arithmetic must run
  // at the exact pre-crash epoch or durations drift by an ULP) captures the
  // clock this round ends at.
  sim_now_ = t_round_end;

  // Checkpoint (L11) with recovery metadata.  Runs after the record is
  // complete (but before the kRound span) so a state extension can fold the
  // finished round into the state it is about to capture — the contract
  // that makes tuned crash recovery bit-identical to an uninterrupted run.
  if (config_.checkpoint_every > 0 &&
      round_ % static_cast<std::uint32_t>(config_.checkpoint_every) == 0) {
    const obs::RealTimer ckpt_timer(tracing);
    Checkpoint ckpt;
    ckpt.round = round_;
    ckpt.params = global_params_;
    ckpt.schedule_step_base = schedule_step_base_ + config_.local_steps;
    ckpt.client_trained_rounds = client_rounds_;
    BinaryWriter w;
    server_opt_->save_state(w);
    ckpt.server_opt_state = w.take();
    // Error-feedback residuals are part of the deterministic client state:
    // recovery must hand each client the exact residual it carried, or the
    // post-restore timeline diverges from an uninterrupted run.
    ckpt.client_ef_residuals.reserve(clients_.size());
    for (const auto& c : clients_) {
      ckpt.client_ef_residuals.push_back(c->ef_residual());
    }
    if (accountant_ != nullptr || config_.secure_aggregation) {
      ckpt.privacy_state = capture_privacy_state();
    }
    if (state_ext_ != nullptr) {
      state_ext_->on_checkpoint(record);
      ckpt.tuner_state = state_ext_->capture_state();
    }
    checkpoints_.save(std::move(ckpt));
    checkpoints_.journal_commit(round_);
    if (tracing) {
      tracer->record({obs::SpanKind::kCheckpoint, round_,
                      obs::kAggregatorActor, -1, t_round_end, t_round_end,
                      ckpt_timer.ns()});
    }
  }

  if (tracing) {
    tracer->record({obs::SpanKind::kRound, round_, obs::kAggregatorActor,
                    static_cast<std::int32_t>(record.survivors), t0,
                    t_round_end, round_timer.ns()});
  }
  obs_.rounds.add();
  obs_.tokens.add(record.tokens_this_round);
  if (t_round_end > t0) {
    obs_.tokens_per_sim_second.set(
        static_cast<double>(record.tokens_this_round) / (t_round_end - t0));
  }

  PHOTON_LOG_INFO("aggregator",
                  "round %u: K=%zu survivors=%zu loss %.4f update-norm %.4f",
                  round_, cohort.size(), survivors.size(),
                  record.mean_train_loss, record.update_norm);

  history_.add(record);
  ++round_;
  schedule_step_base_ += config_.local_steps;
  return record;
}

// ===== elastic async federation (DESIGN.md §12) ===========================

void Aggregator::set_membership_plan(const MembershipPlan& plan) {
  plan.validate();
  if (plan.initial_population > static_cast<int>(clients_.size())) {
    throw std::invalid_argument(
        "Aggregator: membership initial_population exceeds client count");
  }
  membership_plan_ = plan;
  for (int c = 0; c < population(); ++c) {
    const auto i = static_cast<std::size_t>(c);
    membership_[i] = plan.initial_state(c);
    sampler_.set_available(c, membership_[i] == MembershipState::kActive);
    defer_counts_[i] = 0;
    next_eligible_[i] = 0.0;
  }
}

int Aggregator::active_population() const {
  int n = 0;
  for (const MembershipState s : membership_) {
    if (s == MembershipState::kActive) ++n;
  }
  return n;
}

int Aggregator::async_in_flight() const {
  int n = 0;
  for (const InFlight& s : slots_) n += s.busy ? 1 : 0;
  return n;
}

void Aggregator::apply_membership(RoundRecord& record) {
  if (!membership_plan_.enabled()) return;
  obs::Tracer* tracer = config_.tracer;
  const bool tracing = tracer != nullptr && tracer->sampled(round_);
  for (int c = 0; c < population(); ++c) {
    const auto i = static_cast<std::size_t>(c);
    const MembershipAction action =
        membership_plan_.action(round_, c, membership_[i]);
    if (action == MembershipAction::kArrive) {
      // The joiner bootstraps from the current global model through the
      // ordinary broadcast path at its first dispatch/sampling — arrival
      // itself only flips the lifecycle state.
      membership_[i] = MembershipState::kActive;
      sampler_.set_available(c, true);
      defer_counts_[i] = 0;
      next_eligible_[i] = sim_now_;
      ++record.arrivals;
      obs_.arrivals.add();
      if (tracing) {
        tracer->record({obs::SpanKind::kClientArrive, round_, c, 0, sim_now_,
                        sim_now_, 0});
      }
    } else if (action == MembershipAction::kLeave) {
      membership_[i] = MembershipState::kLeft;
      sampler_.set_available(c, false);
      ++record.departures;
      obs_.departures.add();
      if (tracing) {
        tracer->record({obs::SpanKind::kClientLeave, round_, c, 0, sim_now_,
                        sim_now_, 0});
      }
    }
  }
}

int Aggregator::async_buffer_goal() const {
  if (config_.async.buffer_goal > 0) return config_.async.buffer_goal;
  return config_.clients_per_round > 0 ? config_.clients_per_round
                                       : static_cast<int>(clients_.size());
}

int Aggregator::async_max_in_flight() const {
  if (config_.async.max_in_flight > 0) return config_.async.max_in_flight;
  return 2 * async_buffer_goal();
}

double Aggregator::staleness_weight(std::uint32_t staleness) const {
  if (config_.async.staleness ==
      AggregatorConfig::AsyncAggregation::StalenessWeight::kConstant) {
    return 1.0;
  }
  return std::pow(1.0 + static_cast<double>(staleness),
                  -config_.async.staleness_exponent);
}

double Aggregator::defer_backoff(int client, std::uint32_t count) const {
  const RetryPolicy& rp = config_.retry;
  double b = rp.backoff_base_s *
             std::pow(rp.backoff_multiplier, static_cast<double>(count) - 1.0);
  b = std::min(b, rp.backoff_max_s);
  const std::uint64_t h = hash_combine(
      rp.jitter_seed, hash_combine(static_cast<std::uint64_t>(client),
                                   static_cast<std::uint64_t>(count)));
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
  b *= 1.0 + rp.jitter_frac * unit;
  return std::max(b, 1e-9);  // strictly positive: a defer must advance time
}

void Aggregator::async_dispatch(InFlight& slot, int id,
                                const Message& broadcast,
                                std::uint32_t dispatch_seq, bool tracing) {
  obs::Tracer* tracer = config_.tracer;
  SimLink& link = links_[static_cast<std::size_t>(id)];
  const double t_dispatch = slot.dispatch_time;
  const LinkStats before = link.stats();
  const auto sim_elapsed = [&]() {
    const LinkStats& now = link.stats();
    return (now.transfer_seconds - before.transfer_seconds) +
           (now.backoff_seconds - before.backoff_seconds);
  };
  const auto mark = [&](obs::SpanKind kind, double begin, double end,
                        std::uint64_t real_ns) {
    tracer->record({kind, round_, id, static_cast<std::int32_t>(dispatch_seq),
                    begin, end, real_ns});
  };
  // Fault decisions key on the dispatch sequence number within this drain,
  // the async analogue of the sync engine's cohort-attempt salt.
  ClientRoundFault fault;
  if (fault_hook_) fault = fault_hook_(round_, id, dispatch_seq);
  const double straggle = std::max(1.0, fault.straggle_factor);
  const double train_sim = straggle *
                           static_cast<double>(config_.local_steps) /
                           config_.sim_throughput_bps;
  slot.train_sim_seconds = train_sim;
  link.set_trace_sim_base(t_dispatch);
  const obs::RealTimer bcast_timer(tracing);
  try {
    link.transmit(broadcast, slot.header);
  } catch (const TransmitError&) {
    slot.failure_kind = 2;
    slot.arrive_time = t_dispatch + sim_elapsed();
    if (tracing) {
      mark(obs::SpanKind::kBroadcast, t_dispatch, slot.arrive_time,
           bcast_timer.ns());
    }
    return;
  }
  const double bcast_end = t_dispatch + sim_elapsed();
  if (tracing) {
    mark(obs::SpanKind::kBroadcast, t_dispatch, bcast_end, bcast_timer.ns());
  }
  if (fault.crash) {
    slot.failure_kind = 1;
    slot.arrive_time = bcast_end;
    if (tracing) mark(obs::SpanKind::kCrash, bcast_end, bcast_end, 0);
    return;
  }
  clients_[static_cast<std::size_t>(id)]->set_trace(
      {tracing ? tracer : nullptr, round_, bcast_end,
       train_sim / static_cast<double>(config_.local_steps)});
  const obs::RealTimer train_timer(tracing);
  clients_[static_cast<std::size_t>(id)]->run_round(
      slot.header.payload, round_, config_.local_steps, schedule_step_base_,
      slot.update);
  slot.trained = true;
  const double train_end = bcast_end + train_sim;
  if (tracing) {
    mark(obs::SpanKind::kLocalTrain, bcast_end, train_end, train_timer.ns());
  }
  Message up;
  up.type = MessageType::kClientUpdate;
  up.round = round_;
  up.sender = static_cast<std::uint32_t>(id);
  up.codec = slot.update.post.codec;
  up.payload_view = slot.update.delta;
  up.metadata = slot.update.metrics;
  const Codec* up_codec = codec_by_name(up.codec);
  // Secagg masks fp32 ring words server-side, so quantized wire images
  // must materialize through the classic decode path first.
  const bool stream = !config_.secure_aggregation && up_codec != nullptr &&
                      up_codec->quant_bits() != 0;
  link.set_trace_sim_base(train_end);
  const obs::RealTimer up_timer(tracing);
  try {
    if (stream) {
      link.transmit_wire(up, slot.header, slot.wire);
      slot.streamed = true;
    } else {
      link.transmit(up, slot.header);
    }
  } catch (const TransmitError&) {
    slot.failure_kind = 2;
    slot.arrive_time = t_dispatch + sim_elapsed() + train_sim;
    if (tracing) {
      mark(obs::SpanKind::kUpdateReturn, train_end, slot.arrive_time,
           up_timer.ns());
    }
    return;
  }
  slot.arrive_time = t_dispatch + sim_elapsed() + train_sim;
  if (tracing) {
    mark(obs::SpanKind::kUpdateReturn, train_end, slot.arrive_time,
         up_timer.ns());
  }
}

RoundRecord Aggregator::run_round_async() {
  const auto t_round = std::chrono::steady_clock::now();
  obs::Tracer* tracer = config_.tracer;
  const bool tracing = tracer != nullptr && tracer->sampled(round_);
  const obs::RealTimer round_timer(tracing);
  const double t0 = sim_now_;

  LinkStats agg_before;
  for (const auto& link : links_) {
    const LinkStats& s = link.stats();
    agg_before.wire_bytes += s.wire_bytes;
    agg_before.retries += s.retries;
    agg_before.corrupt_chunks += s.corrupt_chunks;
    agg_before.backoff_seconds += s.backoff_seconds;
  }

  RoundRecord record;
  record.round = round_;
  record.async_drain = true;
  record.server_version = round_;
  apply_membership(record);

  const int goal = async_buffer_goal();
  // Admission cap follows the (possibly tuned) config value each drain; the
  // slot pool only grows, so a lowered cap simply leaves surplus slots to
  // drain out before any new admission fills them.
  const auto cap = static_cast<std::size_t>(async_max_in_flight());
  if (slots_.size() < cap) slots_.resize(cap);
  std::fill(dispatch_seq_.begin(), dispatch_seq_.end(), 0u);

  const std::size_t n = global_params_.size();
  if (async_acc_.size() != n) async_acc_.resize(n);
  std::fill(async_acc_.begin(), async_acc_.end(), 0.0);
  double weight_sum = 0.0;
  int accepted = 0;
  double staleness_sum = 0.0;
  std::vector<int> accepted_clients;
  std::vector<MetricDict> accepted_metrics;
  std::vector<double> accepted_weights;
  accepted_clients.reserve(static_cast<std::size_t>(goal));
  accepted_metrics.reserve(static_cast<std::size_t>(goal));
  accepted_weights.reserve(static_cast<std::size_t>(goal));
  double first_dispatch = -1.0;

  // One broadcast borrows the global parameters for the whole drain: the
  // model only mutates at drain boundaries, so every dispatch wave in this
  // drain ships identical bytes and `round` pins the trained-on version.
  Message broadcast;
  broadcast.type = MessageType::kModelBroadcast;
  broadcast.round = round_;
  broadcast.sender = 0;
  broadcast.payload_view = global_params_;
  broadcast.metadata["local_steps"] = config_.local_steps;

  std::vector<int> wave;
  std::vector<std::size_t> wave_slots;
  std::vector<std::uint32_t> wave_seq;
  std::vector<std::pair<std::uint64_t, int>> candidates;

  while (accepted < goal) {
    // --- admission control: batched top-up waves ------------------------
    std::size_t busy = 0;
    for (const InFlight& s : slots_) busy += s.busy ? 1 : 0;
    const std::size_t free = cap > busy ? cap - busy : 0;
    // Waves are chunky on purpose: top up only when at least half the
    // slots are free (or nothing is in flight), so admitted clients train
    // as one parallel_for instead of trickling through one at a time.
    if (free > 0 && (busy == 0 || free >= std::max<std::size_t>(1, cap / 2))) {
      candidates.clear();
      for (int c = 0; c < population(); ++c) {
        const auto ci = static_cast<std::size_t>(c);
        if (membership_[ci] != MembershipState::kActive) continue;
        if (client_slot_[ci] >= 0) continue;  // already in flight
        if (next_eligible_[ci] > sim_now_) continue;
        // Priority is a stateless hash of (seed, version, client): fair
        // across the population and identical on replay and restore.
        const std::uint64_t key = hash_combine(
            hash_combine(hash_combine(config_.seed, kAdmitTag), round_),
            static_cast<std::uint64_t>(c));
        candidates.emplace_back(key, c);
      }
      std::sort(candidates.begin(), candidates.end());
      wave.clear();
      wave_slots.clear();
      wave_seq.clear();
      std::size_t next_free = 0;
      for (const auto& [key, c] : candidates) {
        const auto ci = static_cast<std::size_t>(c);
        if (wave.size() < free) {
          while (slots_[next_free].busy) ++next_free;
          InFlight& slot = slots_[next_free];
          slot.busy = true;
          slot.client = c;
          slot.dispatch_time = sim_now_;
          slot.arrive_time = sim_now_;
          slot.dispatch_version = round_;
          slot.wave_id = 0;
          slot.failure_kind = 0;
          slot.trained = false;
          slot.streamed = false;
          slot.train_sim_seconds = 0.0;
          client_slot_[ci] = static_cast<int>(next_free);
          defer_counts_[ci] = 0;
          wave.push_back(c);
          wave_slots.push_back(next_free);
          wave_seq.push_back(dispatch_seq_[ci]++);
          ++next_free;
          if (first_dispatch < 0.0) first_dispatch = sim_now_;
        } else {
          // In-flight cap reached: tell the client to back off.  The
          // deferral timeline is a pure function of (retry policy, client,
          // defer count), so a restored run reproduces it exactly.
          ++defer_counts_[ci];
          next_eligible_[ci] = sim_now_ + defer_backoff(c, defer_counts_[ci]);
          ++record.admission_deferred;
          obs_.async_deferred.add();
          if (tracing) {
            tracer->record({obs::SpanKind::kAdmissionDefer, round_, c,
                            static_cast<std::int32_t>(defer_counts_[ci]),
                            sim_now_, sim_now_, 0});
          }
        }
      }
      if (!wave.empty() && config_.secure_aggregation) {
        // Every member of a dispatch wave trains against the same server
        // version, so the wave is the async secagg cohort: one session per
        // wave, seeded by the persisted wave counter (key agreement
        // piggybacks on the dispatch — no extra exchange round-trips).
        const std::uint64_t wid = ++secagg_wave_counter_;
        for (const std::size_t si : wave_slots) slots_[si].wave_id = wid;
      }
      if (!wave.empty()) {
        auto dispatch_one = [&](std::size_t i) {
          async_dispatch(slots_[wave_slots[i]], wave[i], broadcast,
                         wave_seq[i], tracing);
        };
        if (config_.parallel_clients && wave.size() > 1) {
          global_pool().parallel_for(wave.size(), dispatch_one);
        } else {
          for (std::size_t i = 0; i < wave.size(); ++i) dispatch_one(i);
        }
        // Serial bookkeeping: data-stream positions advance in wave order.
        for (std::size_t i = 0; i < wave.size(); ++i) {
          if (slots_[wave_slots[i]].trained) {
            ++client_rounds_[static_cast<std::size_t>(wave[i])];
          }
        }
      }
    }

    std::size_t busy_now = 0;
    for (const InFlight& s : slots_) busy_now += s.busy ? 1 : 0;
    if (busy_now == 0) {
      // Nothing in flight and nobody admissible right now: jump the sim
      // clock to the earliest deferral expiry and run admission again.
      double t_next = std::numeric_limits<double>::infinity();
      for (int c = 0; c < population(); ++c) {
        const auto ci = static_cast<std::size_t>(c);
        if (membership_[ci] != MembershipState::kActive) continue;
        t_next = std::min(t_next, next_eligible_[ci]);
      }
      if (!std::isfinite(t_next)) {
        throw std::runtime_error(
            "Aggregator::run_round_async: no active clients in round " +
            std::to_string(round_));
      }
      sim_now_ = std::max(sim_now_, t_next);
      continue;
    }

    if (config_.secure_aggregation) {
      // --- pop a whole secagg wave at once ------------------------------
      // Pair masks cancel only across a complete dispatch wave, so the wave
      // is the atomic unit of arrival: it resolves at its slowest member's
      // arrive_time.  Order on (ready_time, wave_id) — content-based, so
      // replay and restore pop the identical wave sequence.
      std::uint64_t best_wid = 0;
      double best_ready = 0.0;
      bool found = false;
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].busy) continue;
        const std::uint64_t wid = slots_[i].wave_id;
        double ready = 0.0;
        for (const InFlight& s : slots_) {
          if (s.busy && s.wave_id == wid) {
            ready = std::max(ready, s.arrive_time);
          }
        }
        if (!found || ready < best_ready ||
            (ready == best_ready && wid < best_wid)) {
          found = true;
          best_wid = wid;
          best_ready = ready;
        }
      }
      sim_now_ = std::max(sim_now_, best_ready);
      std::vector<std::size_t> member_slots;
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (slots_[i].busy && slots_[i].wave_id == best_wid) {
          member_slots.push_back(i);
        }
      }
      // Cohort positions are client-id order, never slot order: slot
      // packing differs between a recovered process and its twin.
      std::sort(member_slots.begin(), member_slots.end(),
                [&](std::size_t a, std::size_t b) {
                  return slots_[a].client < slots_[b].client;
                });
      std::vector<int> cohort;
      cohort.reserve(member_slots.size());
      for (const std::size_t si : member_slots) {
        cohort.push_back(slots_[si].client);
      }
      std::vector<int> surv_pos;
      std::vector<int> drop_pos;
      for (int pos = 0; pos < static_cast<int>(cohort.size()); ++pos) {
        const InFlight& s = slots_[member_slots[static_cast<std::size_t>(pos)]];
        if (s.failure_kind == 1) {
          ++record.crashed_clients;
          obs_.crashes.add();
          drop_pos.push_back(pos);
        } else if (s.failure_kind == 2) {
          ++record.link_failed_clients;
          obs_.link_failures.add();
          drop_pos.push_back(pos);
        } else if (membership_[static_cast<std::size_t>(s.client)] !=
                   MembershipState::kActive) {
          // Departed while masked and in flight: the update is discarded,
          // but its pair masks are woven into the survivors' contributions,
          // so it is a dropout — survivors reconstruct its seed from shares.
          ++record.discarded_updates;
          ++async_discarded_total_;
          obs_.async_discarded.add();
          drop_pos.push_back(pos);
        } else {
          surv_pos.push_back(pos);
        }
      }
      SecAggConfig scfg;
      scfg.fixed_point_bits = config_.privacy.secagg_fixed_point_bits;
      scfg.share_threshold_fraction =
          config_.privacy.secagg_threshold_fraction;
      scfg.session_seed =
          hash_combine(hash_combine(config_.seed, kSecAggTag), best_wid);
      const SecAggSession session(cohort, scfg);
      if (surv_pos.empty() ||
          static_cast<int>(surv_pos.size()) < session.threshold()) {
        // Below the share threshold the wave is unrecoverable; discard it
        // whole — the protocol never reveals a partial sum.
        record.discarded_updates += static_cast<int>(surv_pos.size());
        async_discarded_total_ += surv_pos.size();
        if (!surv_pos.empty()) obs_.async_discarded.add(surv_pos.size());
      } else {
        if (secagg_acc_.size() != n) secagg_acc_.resize(n);
        std::fill(secagg_acc_.begin(), secagg_acc_.end(),
                  std::uint64_t{0});
        for (const int pos : surv_pos) {
          const InFlight& s =
              slots_[member_slots[static_cast<std::size_t>(pos)]];
          if (s.header.payload.size() != n) {
            throw std::runtime_error(
                "Aggregator::run_round_async: update size mismatch");
          }
          session.mask_update_into(pos, s.header.payload, secagg_acc_,
                                   kernels::default_context());
        }
        if (!drop_pos.empty()) {
          session.recover_dropouts(surv_pos, drop_pos, secagg_acc_,
                                   kernels::default_context(), tracer, round_,
                                   sim_now_, tracing);
          record.secagg_dropouts_recovered +=
              static_cast<int>(drop_pos.size());
          shares_reconstructed_total_ += drop_pos.size();
          obs_.share_recoveries.add(drop_pos.size());
        }
        const int n_ok = static_cast<int>(surv_pos.size());
        std::vector<float> wave_mean(n);
        session.decode_mean(secagg_acc_, n_ok, wave_mean,
                            kernels::default_context());
        // All wave members trained the same dispatch version, so one
        // staleness weight covers the wave: fold w * n_ok * mean — exactly
        // the sum the per-member path would have accumulated.
        const std::uint32_t staleness =
            round_ - slots_[member_slots[0]].dispatch_version;
        const double w = staleness_weight(staleness);
        const double scale = w * static_cast<double>(n_ok);
        for (std::size_t e = 0; e < n; ++e) {
          async_acc_[e] += scale * static_cast<double>(wave_mean[e]);
        }
        weight_sum += scale;
        obs_.secagg_rounds.add();
        for (const int pos : surv_pos) {
          const InFlight& s =
              slots_[member_slots[static_cast<std::size_t>(pos)]];
          ++accepted;
          ++async_accepted_total_;
          staleness_sum += static_cast<double>(staleness);
          record.max_staleness = std::max(record.max_staleness, staleness);
          obs_.async_accepted.add();
          obs_.async_staleness.observe(static_cast<double>(staleness));
          record.tokens_this_round += s.update.tokens;
          record.mean_train_loss += s.update.mean_train_loss;
          accepted_clients.push_back(s.client);
          accepted_metrics.push_back(s.header.metadata);
          accepted_weights.push_back(static_cast<double>(s.update.tokens));
          obs_.client_sim_seconds.observe(s.arrive_time - s.dispatch_time);
        }
      }
      for (const std::size_t si : member_slots) {
        client_slot_[static_cast<std::size_t>(slots_[si].client)] = -1;
        slots_[si].busy = false;
      }
      continue;
    }

    // --- pop the earliest pending outcome, ordered on (arrival, client) —
    // content-based, never slot-index-based, so replay and restore pop the
    // identical sequence regardless of slot packing or thread count.
    std::size_t pick = slots_.size();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const InFlight& s = slots_[i];
      if (!s.busy) continue;
      if (pick == slots_.size() || s.arrive_time < slots_[pick].arrive_time ||
          (s.arrive_time == slots_[pick].arrive_time &&
           s.client < slots_[pick].client)) {
        pick = i;
      }
    }
    InFlight& slot = slots_[pick];
    sim_now_ = std::max(sim_now_, slot.arrive_time);
    const int id = slot.client;
    if (slot.failure_kind == 1) {
      ++record.crashed_clients;
      obs_.crashes.add();
    } else if (slot.failure_kind == 2) {
      ++record.link_failed_clients;
      obs_.link_failures.add();
    } else if (membership_[static_cast<std::size_t>(id)] !=
               MembershipState::kActive) {
      // The client departed while its update was in flight: discard.
      ++record.discarded_updates;
      ++async_discarded_total_;
      obs_.async_discarded.add();
    } else {
      // Accept into the buffer: staleness-weighted fp64 accumulate,
      // streamed chunk-wise from the retained wire image — the full fp32
      // update of a quantized client is never materialized.
      const std::uint32_t staleness = round_ - slot.dispatch_version;
      const double w = staleness_weight(staleness);
      if (slot.streamed) {
        const WireView& v = slot.wire;
        if (static_cast<std::size_t>(v.elems) != n) {
          throw std::runtime_error(
              "Aggregator::run_round_async: update size mismatch");
        }
        const Codec* codec = codec_by_name(v.codec);
        auto accum_chunk = [&](std::size_t c) {
          const obs::RealTimer chunk_timer(tracing);
          const std::size_t len = v.raw_len(c) / sizeof(float);
          std::vector<float> tmp(len);
          codec->decompress_into(v.chunk(c),
                                 {reinterpret_cast<std::uint8_t*>(tmp.data()),
                                  len * sizeof(float)});
          double* acc = async_acc_.data() + v.raw_off(c) / sizeof(float);
          for (std::size_t e = 0; e < len; ++e) {
            acc[e] += w * static_cast<double>(tmp[e]);
          }
          if (tracing) {
            tracer->record({obs::SpanKind::kDequantAccum, round_,
                            obs::kAggregatorActor,
                            static_cast<std::int32_t>(c), sim_now_, sim_now_,
                            chunk_timer.ns()});
          }
        };
        if (config_.parallel_clients && v.n_chunks() > 1) {
          global_pool().parallel_for(v.n_chunks(), accum_chunk);
        } else {
          for (std::size_t c = 0; c < v.n_chunks(); ++c) accum_chunk(c);
        }
      } else {
        const std::vector<float>& p = slot.header.payload;
        if (p.size() != n) {
          throw std::runtime_error(
              "Aggregator::run_round_async: update size mismatch");
        }
        for (std::size_t e = 0; e < n; ++e) {
          async_acc_[e] += w * static_cast<double>(p[e]);
        }
      }
      weight_sum += w;
      ++accepted;
      ++async_accepted_total_;
      staleness_sum += static_cast<double>(staleness);
      record.max_staleness = std::max(record.max_staleness, staleness);
      obs_.async_accepted.add();
      obs_.async_staleness.observe(static_cast<double>(staleness));
      record.tokens_this_round += slot.update.tokens;
      record.mean_train_loss += slot.update.mean_train_loss;
      accepted_clients.push_back(id);
      accepted_metrics.push_back(slot.header.metadata);
      accepted_weights.push_back(static_cast<double>(slot.update.tokens));
      obs_.client_sim_seconds.observe(slot.arrive_time - slot.dispatch_time);
    }
    // Free the slot; the client may request admission again immediately.
    slot.busy = false;
    client_slot_[static_cast<std::size_t>(id)] = -1;
  }

  // --- drain: staleness-weighted server step ----------------------------
  record.participants = accepted_clients;
  record.survivors = accepted;
  record.mean_train_loss =
      accepted > 0 ? record.mean_train_loss / accepted : 0.0;
  record.mean_staleness =
      accepted > 0 ? staleness_sum / static_cast<double>(accepted) : 0.0;
  pseudo_grad_.resize(n);
  const double inv = weight_sum > 0.0 ? 1.0 / weight_sum : 0.0;
  for (std::size_t e = 0; e < n; ++e) {
    pseudo_grad_[e] = static_cast<float>(async_acc_[e] * inv);
  }
  record.update_norm = kernels::l2_norm(pseudo_grad_.data(), n);

  const obs::RealTimer server_opt_timer(tracing);
  checkpoints_.journal_begin(round_);
  server_opt_->apply(global_params_, pseudo_grad_);
  if (tracing) {
    tracer->record({obs::SpanKind::kServerOpt, round_, obs::kAggregatorActor,
                    -1, sim_now_, sim_now_, server_opt_timer.ns()});
  }
  record.client_metrics =
      aggregate_metrics(accepted_metrics, accepted_weights);
  record.secure_round = config_.secure_aggregation;
  account_privacy(record);

  LinkStats agg_after;
  for (const auto& link : links_) {
    const LinkStats& s = link.stats();
    agg_after.wire_bytes += s.wire_bytes;
    agg_after.retries += s.retries;
    agg_after.corrupt_chunks += s.corrupt_chunks;
    agg_after.backoff_seconds += s.backoff_seconds;
  }
  record.comm_bytes = agg_after.wire_bytes - agg_before.wire_bytes;
  record.link_retries = agg_after.retries - agg_before.retries;
  record.corrupt_chunks = agg_after.corrupt_chunks - agg_before.corrupt_chunks;
  record.backoff_seconds =
      agg_after.backoff_seconds - agg_before.backoff_seconds;
  record.sim_local_seconds =
      static_cast<double>(config_.local_steps) / config_.sim_throughput_bps;
  record.sim_slowest_client_seconds = sim_now_ - t0;
  record.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_round)
          .count();

  // Checkpoint at the drain boundary, after the record is complete (but
  // before the kBufferDrain / kRound spans) so a state extension folds the
  // finished drain into what it captures — same contract as the sync path.
  if (config_.checkpoint_every > 0 &&
      round_ % static_cast<std::uint32_t>(config_.checkpoint_every) == 0) {
    const obs::RealTimer ckpt_timer(tracing);
    Checkpoint ckpt;
    ckpt.round = round_;
    ckpt.params = global_params_;
    ckpt.schedule_step_base = schedule_step_base_ + config_.local_steps;
    ckpt.client_trained_rounds = client_rounds_;
    BinaryWriter w;
    server_opt_->save_state(w);
    ckpt.server_opt_state = w.take();
    ckpt.client_ef_residuals.reserve(clients_.size());
    for (const auto& c : clients_) {
      ckpt.client_ef_residuals.push_back(c->ef_residual());
    }
    // The drain boundary is the async save point: the accumulator is empty
    // here, so the buffer's durable form is the pending in-flight updates
    // plus the admission/membership counters and the sim clock.
    ckpt.async_state = capture_async_state();
    if (state_ext_ != nullptr) {
      state_ext_->on_checkpoint(record);
      ckpt.tuner_state = state_ext_->capture_state();
    }
    if (accountant_ != nullptr || config_.secure_aggregation) {
      ckpt.privacy_state = capture_privacy_state();
    }
    checkpoints_.save(std::move(ckpt));
    checkpoints_.journal_commit(round_);
    if (tracing) {
      tracer->record({obs::SpanKind::kCheckpoint, round_,
                      obs::kAggregatorActor, -1, sim_now_, sim_now_,
                      ckpt_timer.ns()});
    }
  }

  if (tracing) {
    const double drain_begin = first_dispatch >= 0.0 ? first_dispatch : t0;
    tracer->record({obs::SpanKind::kBufferDrain, round_, obs::kAggregatorActor,
                    accepted, drain_begin, sim_now_, 0});
    tracer->record({obs::SpanKind::kRound, round_, obs::kAggregatorActor,
                    accepted, t0, sim_now_, round_timer.ns()});
  }
  obs_.rounds.add();
  obs_.async_drains.add();
  obs_.tokens.add(record.tokens_this_round);
  obs_.async_in_flight.set(static_cast<double>(async_in_flight()));
  if (sim_now_ > t0) {
    obs_.tokens_per_sim_second.set(
        static_cast<double>(record.tokens_this_round) / (sim_now_ - t0));
  }

  PHOTON_LOG_INFO("aggregator",
                  "drain %u: accepted=%d staleness mean %.2f max %u "
                  "deferred=%u loss %.4f",
                  round_, accepted, record.mean_staleness,
                  record.max_staleness, record.admission_deferred,
                  record.mean_train_loss);

  history_.add(record);
  ++round_;
  schedule_step_base_ += config_.local_steps;
  return record;
}

AsyncAggregatorState Aggregator::capture_async_state() const {
  AsyncAggregatorState s;
  s.valid = true;
  s.sim_now = sim_now_;
  s.accepted_total = async_accepted_total_;
  s.discarded_total = async_discarded_total_;
  s.membership.reserve(membership_.size());
  for (const MembershipState m : membership_) {
    s.membership.push_back(static_cast<std::uint8_t>(m));
  }
  s.defer_counts = defer_counts_;
  s.next_eligible = next_eligible_;
  std::vector<const InFlight*> pending;
  for (const InFlight& slot : slots_) {
    if (slot.busy) pending.push_back(&slot);
  }
  // Client order, not slot order: slot packing differs between a recovered
  // process and its uninterrupted twin, the set of pending clients doesn't.
  std::sort(pending.begin(), pending.end(),
            [](const InFlight* a, const InFlight* b) {
              return a->client < b->client;
            });
  s.in_flight.reserve(pending.size());
  for (const InFlight* slot : pending) {
    AsyncInFlightSnapshot u;
    u.client = slot->client;
    u.arrive_time = slot->arrive_time;
    u.dispatch_version = slot->dispatch_version;
    u.wave_id = slot->wave_id;
    u.failure_kind = slot->failure_kind;
    u.tokens = slot->update.tokens;
    u.mean_train_loss = slot->update.mean_train_loss;
    u.train_sim_seconds = slot->train_sim_seconds;
    u.metrics = slot->header.metadata;
    if (slot->failure_kind == 0) {
      if (slot->streamed) {
        const WireView& v = slot->wire;
        u.codec = v.codec;
        u.elems = v.elems;
        u.chunk_raw_bytes = v.chunk_raw_bytes;
        u.chunk_lens = v.lens;
        std::uint64_t total = 0;
        for (const std::uint64_t len : v.lens) total += len;
        u.chunk_bytes.reserve(static_cast<std::size_t>(total));
        for (std::size_t c = 0; c < v.n_chunks(); ++c) {
          const auto chunk = v.chunk(c);
          u.chunk_bytes.insert(u.chunk_bytes.end(), chunk.begin(),
                               chunk.end());
        }
      } else {
        // Lossless/raw update: persist the decoded fp32 payload directly
        // (codec stays empty, marking the non-streamed replay path).
        const std::vector<float>& p = slot->header.payload;
        u.elems = p.size();
        u.chunk_raw_bytes = p.size() * sizeof(float);
        u.chunk_lens = {static_cast<std::uint64_t>(p.size() * sizeof(float))};
        const auto* bytes = reinterpret_cast<const std::uint8_t*>(p.data());
        u.chunk_bytes.assign(bytes, bytes + p.size() * sizeof(float));
      }
    }
    s.in_flight.push_back(std::move(u));
  }
  return s;
}

void Aggregator::restore_async_state(const AsyncAggregatorState& st) {
  if (st.membership.size() != clients_.size() ||
      st.defer_counts.size() != clients_.size() ||
      st.next_eligible.size() != clients_.size()) {
    throw std::runtime_error(
        "Aggregator: async checkpoint population mismatch");
  }
  sim_now_ = st.sim_now;
  async_accepted_total_ = st.accepted_total;
  async_discarded_total_ = st.discarded_total;
  // The checkpointed lifecycle states win over anything plan-derived: a
  // restore may run under a *different* membership plan (late joiners that
  // were absent at save time), and the saved states are the truth.
  for (std::size_t c = 0; c < clients_.size(); ++c) {
    membership_[c] = static_cast<MembershipState>(st.membership[c]);
    sampler_.set_available(static_cast<int>(c),
                           membership_[c] == MembershipState::kActive);
  }
  defer_counts_ = st.defer_counts;
  next_eligible_ = st.next_eligible;
  if (slots_.size() < st.in_flight.size()) slots_.resize(st.in_flight.size());
  for (InFlight& slot : slots_) {
    slot.busy = false;
    slot.client = -1;
  }
  std::fill(client_slot_.begin(), client_slot_.end(), -1);
  for (std::size_t i = 0; i < st.in_flight.size(); ++i) {
    const AsyncInFlightSnapshot& u = st.in_flight[i];
    if (u.client < 0 || u.client >= population()) {
      throw std::runtime_error("Aggregator: async checkpoint bad client id");
    }
    InFlight& slot = slots_[i];
    slot.busy = true;
    slot.client = u.client;
    slot.dispatch_time = u.arrive_time - u.train_sim_seconds;
    slot.arrive_time = u.arrive_time;
    slot.dispatch_version = u.dispatch_version;
    slot.wave_id = u.wave_id;
    slot.failure_kind = u.failure_kind;
    slot.trained = false;  // its stream advance is already in the ckpt
    slot.train_sim_seconds = u.train_sim_seconds;
    slot.update.tokens = u.tokens;
    slot.update.mean_train_loss = u.mean_train_loss;
    slot.header.metadata = u.metrics;
    slot.header.sender = static_cast<std::uint32_t>(u.client);
    slot.header.round = u.dispatch_version;
    slot.streamed = u.failure_kind == 0 && !u.codec.empty();
    if (slot.streamed) {
      WireView& v = slot.wire;
      v.bytes = u.chunk_bytes;
      v.codec = u.codec;
      v.elems = u.elems;
      v.raw_bytes = static_cast<std::size_t>(u.elems) * sizeof(float);
      v.chunk_raw_bytes = static_cast<std::size_t>(u.chunk_raw_bytes);
      v.lens = u.chunk_lens;
      v.offs.clear();
      std::uint64_t off = 0;
      for (const std::uint64_t len : u.chunk_lens) {
        v.offs.push_back(off);
        off += len;
      }
    } else if (u.failure_kind == 0) {
      slot.header.payload.resize(static_cast<std::size_t>(u.elems));
      std::memcpy(slot.header.payload.data(), u.chunk_bytes.data(),
                  u.chunk_bytes.size());
    }
    client_slot_[static_cast<std::size_t>(u.client)] = static_cast<int>(i);
  }
}

void Aggregator::account_privacy(RoundRecord& record) {
  if (accountant_ == nullptr) return;
  accountant_->account_rounds();
  record.dp_epsilon = accountant_->epsilon();
  obs_.dp_epsilon.set(record.dp_epsilon);
}

PrivacyCheckpointState Aggregator::capture_privacy_state() const {
  PrivacyCheckpointState s;
  s.valid = true;
  if (accountant_ != nullptr) {
    s.accounted_rounds = accountant_->accounted_rounds();
    s.noise_multiplier = accountant_->noise_multiplier();
    s.delta = accountant_->delta();
    s.epsilon = accountant_->epsilon();
  }
  s.wave_counter = secagg_wave_counter_;
  s.shares_reconstructed_total = shares_reconstructed_total_;
  return s;
}

void Aggregator::record_eval(double perplexity) {
  if (history_.empty()) {
    throw std::runtime_error("Aggregator::record_eval: no rounds yet");
  }
  history_.last_mutable().eval_perplexity = perplexity;
}

bool Aggregator::restore_latest_checkpoint() {
  // Prefer the journal's last committed round: a higher-numbered ckpt file
  // could exist from a crash mid-save, but only a committed round is known
  // durable and consistent.
  std::optional<Checkpoint> ckpt;
  const std::int64_t committed = checkpoints_.journal_last_committed();
  if (committed >= 0) {
    ckpt = checkpoints_.at_round(static_cast<std::uint32_t>(committed));
  }
  if (!ckpt.has_value()) ckpt = checkpoints_.latest();
  if (!ckpt.has_value()) return false;
  if (ckpt->params.size() != global_params_.size()) return false;

  global_params_ = ckpt->params;
  round_ = ckpt->round + 1;
  // Legacy checkpoints (no metadata) ran with this fixed cadence, so the
  // fallback reconstruction is exact for them.
  schedule_step_base_ =
      ckpt->schedule_step_base >= 0
          ? ckpt->schedule_step_base
          : static_cast<std::int64_t>(round_) * config_.local_steps;
  server_opt_->reset();
  if (!ckpt->server_opt_state.empty()) {
    BinaryReader r(ckpt->server_opt_state);
    server_opt_->load_state(r);
  }
  // Fast-forward fresh client data streams to their recorded positions so
  // post-recovery rounds read the exact tokens an uninterrupted run would.
  // Streams cannot rewind, so only positive deltas apply (an in-process
  // restore that already advanced past the checkpoint keeps its position).
  if (ckpt->client_trained_rounds.size() == clients_.size()) {
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      const std::uint32_t target = ckpt->client_trained_rounds[c];
      if (target > client_rounds_[c]) {
        clients_[c]->fast_forward(target - client_rounds_[c],
                                  config_.local_steps);
        client_rounds_[c] = target;
      }
    }
  }
  // Restore each client's error-feedback residual (empty vectors for
  // clients that had none, or a legacy checkpoint without the field).
  if (ckpt->client_ef_residuals.size() == clients_.size()) {
    for (std::size_t c = 0; c < clients_.size(); ++c) {
      clients_[c]->set_ef_residual(std::move(ckpt->client_ef_residuals[c]));
    }
  }
  if (ckpt->async_state.valid) {
    // Async engine: resume mid-buffer.  Membership, admission counters, the
    // sim clock, and every pending in-flight update come back exactly as the
    // drain boundary saved them.
    restore_async_state(ckpt->async_state);
  } else if (membership_plan_.enabled()) {
    // Sync checkpoint under an elastic plan: replay the plan's lifecycle
    // actions for every completed round so membership matches what the
    // uninterrupted run would hold entering round_.
    for (int c = 0; c < population(); ++c) {
      membership_[static_cast<std::size_t>(c)] =
          membership_plan_.initial_state(c);
    }
    for (std::uint32_t r = 0; r < round_; ++r) {
      for (int c = 0; c < population(); ++c) {
        const auto i = static_cast<std::size_t>(c);
        const MembershipAction action =
            membership_plan_.action(r, c, membership_[i]);
        if (action == MembershipAction::kArrive) {
          membership_[i] = MembershipState::kActive;
        } else if (action == MembershipAction::kLeave) {
          membership_[i] = MembershipState::kLeft;
        }
      }
    }
    for (int c = 0; c < population(); ++c) {
      sampler_.set_available(c, membership_[static_cast<std::size_t>(c)] ==
                                    MembershipState::kActive);
    }
  }
  if (ckpt->privacy_state.valid) {
    // The wave counter must keep monotonically increasing across the crash
    // so post-recovery waves never reuse a pre-crash session seed, and the
    // accountant resumes mid-composition (epsilon is recomputed, not
    // trusted from the snapshot).
    secagg_wave_counter_ = ckpt->privacy_state.wave_counter;
    shares_reconstructed_total_ =
        ckpt->privacy_state.shares_reconstructed_total;
    if (accountant_ != nullptr && ckpt->privacy_state.delta > 0.0) {
      accountant_ = std::make_unique<privacy::RdpAccountant>(
          ckpt->privacy_state.noise_multiplier, ckpt->privacy_state.delta);
      accountant_->account_rounds(ckpt->privacy_state.accounted_rounds);
      obs_.dp_epsilon.set(accountant_->epsilon());
    }
  }
  if (state_ext_ != nullptr && !ckpt->tuner_state.empty()) {
    // Restored last so the extension can immediately re-apply its knob
    // decisions against the fully recovered engine state.
    state_ext_->restore_state(ckpt->tuner_state);
  }
  checkpoints_.journal_recovered(round_);
  PHOTON_LOG_INFO("aggregator", "recovered at round %u (ckpt %u)", round_,
                  ckpt->round);
  return true;
}

}  // namespace photon
