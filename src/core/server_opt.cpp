#include "core/server_opt.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/kernel_context.hpp"
#include "tensor/kernels.hpp"

namespace photon {
namespace {

void check_sizes(std::span<float> params, std::span<const float> grad) {
  if (params.size() != grad.size()) {
    throw std::invalid_argument("ServerOpt: params/pseudo_grad size mismatch");
  }
}

// Elementwise server updates cost ~16 scalar ops per parameter.
constexpr std::size_t kStepRowCost = 16;

// Shard an elementwise update fn(i0, i1) over the default kernel context.
template <typename Fn>
void for_shards(std::size_t n, Fn&& fn) {
  kernels::default_context().parallel_shards(
      n, kernels::default_context().grain_rows(kStepRowCost),
      [&](int, std::size_t i0, std::size_t i1) { fn(i0, i1); });
}

}  // namespace

void FedAvgOpt::apply(std::span<float> params,
                      std::span<const float> pseudo_grad) {
  check_sizes(params, pseudo_grad);
  // params += (-lr) * g; the sign flip is exact, so this matches
  // params -= lr * g bit for bit.
  const auto& ops = kernels::default_context().simd();
  for_shards(params.size(), [&](std::size_t i0, std::size_t i1) {
    ops.axpy(params.data() + i0, pseudo_grad.data() + i0, i1 - i0, -lr_);
  });
}

void FedMomOpt::apply(std::span<float> params,
                      std::span<const float> pseudo_grad) {
  check_sizes(params, pseudo_grad);
  if (buf_.size() != params.size()) buf_.assign(params.size(), 0.0f);
  const auto& ops = kernels::default_context().simd();
  for_shards(params.size(), [&](std::size_t i0, std::size_t i1) {
    ops.momentum(params.data() + i0, buf_.data() + i0,
                 pseudo_grad.data() + i0, i1 - i0, lr_, momentum_);
  });
}

void FedMomOpt::reset() { buf_.clear(); }

void NesterovOpt::apply(std::span<float> params,
                        std::span<const float> pseudo_grad) {
  check_sizes(params, pseudo_grad);
  if (buf_.size() != params.size()) buf_.assign(params.size(), 0.0f);
  // initialized=1 always: on the first apply buf is zero and
  // mu*0 + g == g exactly, matching the unconditional update above.
  const auto& ops = kernels::default_context().simd();
  for_shards(params.size(), [&](std::size_t i0, std::size_t i1) {
    ops.nesterov(params.data() + i0, buf_.data() + i0,
                 pseudo_grad.data() + i0, i1 - i0, lr_, momentum_,
                 /*initialized=*/1);
  });
}

void NesterovOpt::reset() { buf_.clear(); }

void FedAdamOpt::apply(std::span<float> params,
                       std::span<const float> pseudo_grad) {
  check_sizes(params, pseudo_grad);
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0f);
    v_.assign(params.size(), 0.0f);
    t_ = 0;
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  // The fused op computes lr*(mhat/denom) rather than (lr*mhat)/denom;
  // that reassociation moves the update by at most one ulp and stays
  // deterministic across variants and thread counts.
  const auto& ops = kernels::default_context().simd();
  for_shards(params.size(), [&](std::size_t i0, std::size_t i1) {
    ops.adamw(params.data() + i0, m_.data() + i0, v_.data() + i0,
              pseudo_grad.data() + i0, i1 - i0, /*gscale=*/1.0f, lr_, beta1_,
              beta2_, bc1, bc2, eps_, /*wd=*/0.0f);
  });
}

void FedAdamOpt::reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

std::unique_ptr<ServerOpt> make_server_opt(const std::string& name, float lr,
                                           float momentum) {
  if (name == "fedavg") return std::make_unique<FedAvgOpt>(lr);
  if (name == "fedmom") return std::make_unique<FedMomOpt>(lr, momentum);
  if (name == "nesterov") return std::make_unique<NesterovOpt>(lr, momentum);
  if (name == "fedadam") return std::make_unique<FedAdamOpt>(lr);
  throw std::invalid_argument("make_server_opt: unknown optimizer " + name);
}

}  // namespace photon
