#include "core/server_opt.hpp"

#include <cmath>
#include <stdexcept>

namespace photon {
namespace {

void check_sizes(std::span<float> params, std::span<const float> grad) {
  if (params.size() != grad.size()) {
    throw std::invalid_argument("ServerOpt: params/pseudo_grad size mismatch");
  }
}

}  // namespace

void FedAvgOpt::apply(std::span<float> params,
                      std::span<const float> pseudo_grad) {
  check_sizes(params, pseudo_grad);
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] -= lr_ * pseudo_grad[i];
  }
}

void FedMomOpt::apply(std::span<float> params,
                      std::span<const float> pseudo_grad) {
  check_sizes(params, pseudo_grad);
  if (buf_.size() != params.size()) buf_.assign(params.size(), 0.0f);
  for (std::size_t i = 0; i < params.size(); ++i) {
    buf_[i] = momentum_ * buf_[i] + pseudo_grad[i];
    params[i] -= lr_ * buf_[i];
  }
}

void FedMomOpt::reset() { buf_.clear(); }

void NesterovOpt::apply(std::span<float> params,
                        std::span<const float> pseudo_grad) {
  check_sizes(params, pseudo_grad);
  if (buf_.size() != params.size()) buf_.assign(params.size(), 0.0f);
  for (std::size_t i = 0; i < params.size(); ++i) {
    buf_[i] = momentum_ * buf_[i] + pseudo_grad[i];
    params[i] -= lr_ * (pseudo_grad[i] + momentum_ * buf_[i]);
  }
}

void NesterovOpt::reset() { buf_.clear(); }

void FedAdamOpt::apply(std::span<float> params,
                       std::span<const float> pseudo_grad) {
  check_sizes(params, pseudo_grad);
  if (m_.size() != params.size()) {
    m_.assign(params.size(), 0.0f);
    v_.assign(params.size(), 0.0f);
    t_ = 0;
  }
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float g = pseudo_grad[i];
    m_[i] = beta1_ * m_[i] + (1.0f - beta1_) * g;
    v_[i] = beta2_ * v_[i] + (1.0f - beta2_) * g * g;
    params[i] -= lr_ * (m_[i] / bc1) / (std::sqrt(v_[i] / bc2) + eps_);
  }
}

void FedAdamOpt::reset() {
  m_.clear();
  v_.clear();
  t_ = 0;
}

std::unique_ptr<ServerOpt> make_server_opt(const std::string& name, float lr,
                                           float momentum) {
  if (name == "fedavg") return std::make_unique<FedAvgOpt>(lr);
  if (name == "fedmom") return std::make_unique<FedMomOpt>(lr, momentum);
  if (name == "nesterov") return std::make_unique<NesterovOpt>(lr, momentum);
  if (name == "fedadam") return std::make_unique<FedAdamOpt>(lr);
  throw std::invalid_argument("make_server_opt: unknown optimizer " + name);
}

}  // namespace photon
