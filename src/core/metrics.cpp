#include "core/metrics.hpp"

#include <stdexcept>

namespace photon {

MetricDict aggregate_metrics(const std::vector<MetricDict>& metrics,
                             const std::vector<double>& weights) {
  if (metrics.size() != weights.size()) {
    throw std::invalid_argument("aggregate_metrics: size mismatch");
  }
  MetricDict sums;
  std::map<std::string, double> weight_totals;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const double w = weights[i];
    if (w < 0.0) throw std::invalid_argument("aggregate_metrics: negative weight");
    for (const auto& [key, value] : metrics[i]) {
      sums[key] += w * value;
      weight_totals[key] += w;
    }
  }
  MetricDict out;
  for (const auto& [key, total] : sums) {
    const double wt = weight_totals[key];
    out[key] = wt > 0.0 ? total / wt : 0.0;
  }
  return out;
}

int TrainingHistory::first_round_reaching(double target_ppl) const {
  for (const auto& r : records_) {
    if (r.eval_perplexity >= 0.0 && r.eval_perplexity <= target_ppl) {
      return static_cast<int>(r.round);
    }
  }
  return -1;
}

std::uint64_t TrainingHistory::tokens_through(std::uint32_t round) const {
  std::uint64_t total = 0;
  for (const auto& r : records_) {
    if (r.round <= round) total += r.tokens_this_round;
  }
  return total;
}

double TrainingHistory::sim_seconds_to(double target_ppl) const {
  double total = 0.0;
  for (const auto& r : records_) {
    total += r.sim_local_seconds + r.sim_comm_seconds;
    if (r.eval_perplexity >= 0.0 && r.eval_perplexity <= target_ppl) {
      return total;
    }
  }
  return -1.0;
}

double TrainingHistory::best_perplexity() const {
  double best = -1.0;
  for (const auto& r : records_) {
    if (r.eval_perplexity >= 0.0 &&
        (best < 0.0 || r.eval_perplexity < best)) {
      best = r.eval_perplexity;
    }
  }
  return best;
}

double TrainingHistory::final_perplexity() const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (it->eval_perplexity >= 0.0) return it->eval_perplexity;
  }
  return -1.0;
}

}  // namespace photon
