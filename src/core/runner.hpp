#pragma once
// PhotonRunner: end-to-end experiment harness.
//
// Wires corpora -> data sources -> LLM clients -> Aggregator for one
// federated pre-training run, evaluates the global model on a held-out
// validation set each eval interval, and stops at a round budget or target
// perplexity.  Every bench reproducing a paper figure drives this class.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>

#include "comm/cost_model.hpp"
#include "core/aggregator.hpp"
#include "core/metrics.hpp"
#include "data/dataset.hpp"
#include "nn/config.hpp"

namespace photon {

struct RunnerConfig {
  ModelConfig model = ModelConfig::nano();

  // Federation shape (paper Table 6: P, K, tau).
  int population = 4;
  int clients_per_round = 0;  // 0 = full participation
  int local_steps = 16;       // tau
  int local_batch = 4;        // B_l
  int sub_nodes = 1;          // nested sub-federation width per client

  // Optimization recipe.
  std::string server_opt = "fedavg";
  float server_lr = 1.0f;       // eta_s (Photon default 1.0)
  float server_momentum = 0.0f; // mu_s (Photon default 0.0)
  bool stateless_optimizer = true;
  float max_lr = 1e-2f;         // eta_max: small batch + HIGH learning rate
  float min_lr_factor = 0.1f;   // alpha (Table 5)
  int warmup_steps = 20;
  int schedule_total_steps = 0; // 0 = rounds * local_steps
  float max_grad_norm = 1.0f;

  // Communication.
  Topology topology = Topology::kRingAllReduce;
  double bandwidth_mbps = 1250.0;  // 10 Gbps
  /// Per-client Agg<->LLM-C link speed (Gbps); scales with bandwidth_mbps
  /// when modeling LAN vs WAN deployments.
  double link_bandwidth_gbps = 10.0;
  bool secure_aggregation = false;
  std::string link_codec;

  // Fault tolerance (forwarded to AggregatorConfig).
  double round_deadline_s = 0.0;
  std::filesystem::path checkpoint_dir;  // empty = memory-only checkpoints
  int checkpoint_every = 1;

  // Elastic async federation (DESIGN.md §12).  Forwarded verbatim to
  // AggregatorConfig; the round loop is unchanged — each run_round() is one
  // buffer drain in async mode.
  AggregatorConfig::AsyncAggregation async;
  bool skip_on_quorum_loss = false;
  double min_cohort_fraction = 0.0;
  int max_cohort_retries = 2;
  bool ephemeral_clients = false;  // release client replicas between rounds
  MembershipPlan membership;       // join/leave churn; disabled by default

  // Data: blend 1.0 = IID C4-style; < 1.0 = Pile-style heterogeneous
  // sources dealt round-robin across clients.
  double heterogeneity_blend = 1.0;
  int corpus_branching = 12;
  int corpus_mean_doc_len = 96;

  // Run control.
  int rounds = 50;
  int eval_every = 1;
  int eval_batches = 4;
  int eval_batch_size = 8;
  std::size_t eval_tokens = 1 << 14;
  double target_perplexity = -1.0;  // early stop when reached (< 0 = off)

  // Simulation accounting.
  double sim_throughput_bps = 1.0;  // nu for wall-time records

  std::uint64_t seed = 42;

  // Observability (not owned; may be null).  When both are null and the
  // PHOTON_TRACE environment variable is set, the runner falls back to the
  // process-wide env tracer and writes photon_trace.json plus a per-round
  // table at the end of run().
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

class PhotonRunner {
 public:
  /// Invoked after every completed round (before that round's eval) with
  /// the aggregator and the fresh record.  This is the trace-driven
  /// autotuner's attachment point (src/tune): observe the round, decide,
  /// and push next-round knobs — without the runner depending on the tuner.
  using RoundHook = std::function<void(Aggregator&, const RoundRecord&)>;

  explicit PhotonRunner(RunnerConfig config);
  ~PhotonRunner();

  PhotonRunner(const PhotonRunner&) = delete;
  PhotonRunner& operator=(const PhotonRunner&) = delete;

  /// Run to the round budget or target perplexity; returns the history.
  const TrainingHistory& run();

  /// Evaluate the current global model on the validation set.
  double evaluate_now();

  Aggregator& aggregator() { return *aggregator_; }
  const RunnerConfig& config() const { return config_; }
  const TokenDataset& eval_set() const { return eval_set_; }

  /// Install (or clear, with nullptr) the after-round hook.
  void set_round_hook(RoundHook hook) { round_hook_ = std::move(hook); }

 private:
  RunnerConfig config_;
  RoundHook round_hook_;
  std::unique_ptr<Aggregator> aggregator_;
  std::unique_ptr<GptModel> eval_model_;
  TokenDataset eval_set_;
  /// True when the tracer came from PHOTON_TRACE rather than the config;
  /// run() then exports photon_trace.json + a round table on completion.
  bool env_traced_ = false;
};

}  // namespace photon
