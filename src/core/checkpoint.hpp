#pragma once
// Checkpointing (paper Alg. 1 L11 server-side, L27 client-side): global
// model snapshots each round for fast recovery, with optional persistence
// to disk, recovery metadata, and a write-ahead round journal that makes
// aggregator crash-recovery exact (ServerOpt applied exactly once per
// completed round; LR schedule state restored bit-identically).

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace photon {

/// One in-flight async update pending at a drain boundary, retained as its
/// compressed wire image so a restored run replays it through the exact
/// dequantize-accumulate path the uninterrupted run would have used.
struct AsyncInFlightSnapshot {
  int client = -1;
  double arrive_time = 0.0;          // absolute sim time the update lands
  std::uint32_t dispatch_version = 0;  // server model version it trained on
  /// SecAgg dispatch wave this update was masked under (0 when plain).
  /// Every member of a wave shares it, so a restored run rebuilds the same
  /// SecAggSession (seeded by wave id) and unmasking stays bit-exact.
  std::uint64_t wave_id = 0;
  /// 0 = delivers normally; 1 = client crashed mid-round; 2 = the return
  /// transmit aborted.  Failed slots still occupy admission capacity until
  /// their arrive_time, so they must survive recovery too.
  std::uint8_t failure_kind = 0;
  std::uint64_t tokens = 0;
  double mean_train_loss = 0.0;
  double train_sim_seconds = 0.0;
  std::map<std::string, double> metrics;
  // --- retained wire image (empty for failed slots) ---
  std::string codec;
  std::uint64_t elems = 0;
  std::uint64_t chunk_raw_bytes = 0;
  std::vector<std::uint64_t> chunk_lens;
  std::vector<std::uint8_t> chunk_bytes;  // compressed chunks, concatenated
};

/// Async engine state captured at a FedBuff drain boundary (the fp64
/// accumulator is always empty there, so "buffer contents" = the in-flight
/// updates plus the per-client counters that gate admission).  Trailing v2
/// checkpoint field; absent for sync-mode saves and older snapshots.
struct AsyncAggregatorState {
  bool valid = false;
  /// Async rounds consume sim time across drain boundaries, so unlike the
  /// sync engine the clock itself is part of the restart state.
  double sim_now = 0.0;
  std::uint64_t accepted_total = 0;
  std::uint64_t discarded_total = 0;
  std::vector<std::uint8_t> membership;     // MembershipState per client
  std::vector<std::uint32_t> defer_counts;  // consecutive admission defers
  std::vector<double> next_eligible;        // sim time a defer expires
  std::vector<AsyncInFlightSnapshot> in_flight;
};

/// Privacy engine state at a checkpoint boundary (DESIGN.md §14): the RDP
/// accountant's composition count (epsilon is recomputed from it) and the
/// SecAgg wave counter that seeds per-dispatch-wave mask sessions.  A
/// restored run continues both exactly where the crashed run left off.
struct PrivacyCheckpointState {
  bool valid = false;
  std::uint64_t accounted_rounds = 0;   // RDP compositions so far
  double noise_multiplier = 0.0;        // sigma the accountant was built with
  double delta = 0.0;                   // target delta; 0 = DP disabled
  std::uint64_t wave_counter = 0;       // next async secagg wave id
  std::uint64_t shares_reconstructed_total = 0;  // lifetime dropout recoveries
  double epsilon = 0.0;                 // eps(delta) at save time (audit)
};

struct Checkpoint {
  std::uint32_t round = 0;
  std::vector<float> params;
  double eval_perplexity = -1.0;

  // --- recovery metadata (defaults = "not recorded", for legacy saves) ---
  /// Cumulative schedule step count *after* completing `round`; restoring
  /// it makes the post-recovery cosine LR schedule identical to an
  /// uninterrupted run.
  std::int64_t schedule_step_base = -1;
  /// Per-client count of rounds whose local training actually ran, used to
  /// fast-forward fresh client data streams to their pre-crash positions.
  std::vector<std::uint32_t> client_trained_rounds;
  /// Serialized ServerOpt state (momentum / moment buffers) captured after
  /// this round's apply; empty for stateless optimizers.
  std::vector<std::uint8_t> server_opt_state;
  /// Per-client error-feedback residuals under quantized wire codecs
  /// (empty vectors for clients that have not hit a lossy codec yet, the
  /// whole list empty when the wire path is lossless).  Restoring them
  /// keeps the post-recovery wire stream bit-identical to an uninterrupted
  /// run.  Trailing v2 field: absent in older snapshots, read only when
  /// bytes remain.
  std::vector<std::vector<float>> client_ef_residuals;
  /// Elastic async engine state (valid only for async-mode saves); second
  /// trailing field, written after the residuals and skipped entirely for
  /// sync saves so their byte layout is unchanged.
  AsyncAggregatorState async_state;
  /// Opaque autotuner state (src/tune decision history + trace digests);
  /// third trailing field, flag-prefixed, written only when a tuner is
  /// attached so untuned saves keep their exact historical byte layout.
  /// Restoring it replays the tuner's knob decisions bit-identically.
  std::vector<std::uint8_t> tuner_state;
  /// Privacy engine state (DESIGN.md §14): DP accountant composition and
  /// the SecAgg wave counter.  Fourth trailing field, flag-prefixed,
  /// written only when secure aggregation or DP accounting is active so
  /// plain saves keep their exact historical byte layout.
  PrivacyCheckpointState privacy_state;
};

class CheckpointStore {
 public:
  /// `dir` empty = memory-only store (tests, sweeps); otherwise snapshots
  /// are also written as <dir>/ckpt_<round>.bin and the round journal as
  /// <dir>/round.journal (replayed on construction for crash recovery).
  explicit CheckpointStore(std::filesystem::path dir = {},
                           std::size_t keep_last = 3);

  void save(std::uint32_t round, std::span<const float> params,
            double eval_perplexity = -1.0);
  /// Full save including recovery metadata.
  void save(Checkpoint ckpt);

  /// Most recent checkpoint: the newest in memory, else (fresh process) the
  /// highest-round ckpt_*.bin on disk.
  std::optional<Checkpoint> latest() const;

  /// Checkpoint for an exact round (memory first, then disk).
  std::optional<Checkpoint> at_round(std::uint32_t round) const;

  std::size_t num_in_memory() const { return memory_.size(); }
  const std::filesystem::path& dir() const { return dir_; }

  // --- write-ahead round journal ---------------------------------------
  // Protocol per round r: `begin r` is appended (and flushed) BEFORE the
  // ServerOpt apply; `commit r` AFTER the round's checkpoint is durable.
  // On recovery the last committed round is the restore point: a round
  // with a dangling `begin` may have mutated the in-memory model but never
  // produced a durable checkpoint, so re-running it from the last commit
  // applies ServerOpt exactly once per round of the final timeline.

  void journal_begin(std::uint32_t round);
  void journal_commit(std::uint32_t round);
  /// Record that a recovery restarted the run at `round` (audit trail).
  void journal_recovered(std::uint32_t round);

  /// Highest round with a durable checkpoint per the journal; -1 if the
  /// journal has no commits (fall back to latest()).
  std::int64_t journal_last_committed() const { return last_committed_; }
  /// Highest round that began applying; -1 if none.
  std::int64_t journal_last_begun() const { return last_begun_; }
  /// In-order journal entries ("B <r>" / "C <r>" / "R <r>"), replayed from
  /// disk on construction when persistent.
  const std::vector<std::string>& journal() const { return journal_; }

 private:
  void journal_append(char tag, std::uint32_t round);
  void replay_journal();
  void write_to_disk(const Checkpoint& ckpt) const;
  std::optional<Checkpoint> read_from_disk(std::uint32_t round) const;

  std::filesystem::path dir_;
  std::size_t keep_last_;
  std::vector<Checkpoint> memory_;  // ring of the last keep_last_ snapshots
  std::vector<std::string> journal_;
  std::int64_t last_begun_ = -1;
  std::int64_t last_committed_ = -1;
};

}  // namespace photon
