#pragma once
// Checkpointing (paper Alg. 1 L11 server-side, L27 client-side): global
// model snapshots each round for fast recovery, with optional persistence
// to disk.

#include <cstdint>
#include <filesystem>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace photon {

struct Checkpoint {
  std::uint32_t round = 0;
  std::vector<float> params;
  double eval_perplexity = -1.0;
};

class CheckpointStore {
 public:
  /// `dir` empty = memory-only store (tests, sweeps); otherwise snapshots
  /// are also written as <dir>/ckpt_<round>.bin.
  explicit CheckpointStore(std::filesystem::path dir = {},
                           std::size_t keep_last = 3);

  void save(std::uint32_t round, std::span<const float> params,
            double eval_perplexity = -1.0);

  /// Most recent checkpoint, if any.
  std::optional<Checkpoint> latest() const;

  /// Checkpoint for an exact round (memory first, then disk).
  std::optional<Checkpoint> at_round(std::uint32_t round) const;

  std::size_t num_in_memory() const { return memory_.size(); }
  const std::filesystem::path& dir() const { return dir_; }

 private:
  void write_to_disk(const Checkpoint& ckpt) const;
  std::optional<Checkpoint> read_from_disk(std::uint32_t round) const;

  std::filesystem::path dir_;
  std::size_t keep_last_;
  std::vector<Checkpoint> memory_;  // ring of the last keep_last_ snapshots
};

}  // namespace photon
