#include "core/postprocess.hpp"

#include <stdexcept>

#include "comm/compression.hpp"
#include "core/privacy.hpp"
#include "tensor/kernels.hpp"

namespace photon {

ClipStage::ClipStage(double max_norm) : max_norm_(max_norm) {
  if (max_norm <= 0.0) throw std::invalid_argument("ClipStage: max_norm <= 0");
}

void ClipStage::apply(std::span<float> update, PostProcessReport& report,
                      const PostProcessContext& /*ctx*/) {
  const double norm = kernels::l2_norm(update.data(), update.size());
  report.preclip_norm = norm;
  if (norm > max_norm_ && norm > 0.0) {
    kernels::scale_inplace(update.data(),
                           static_cast<float>(max_norm_ / norm),
                           update.size());
    report.clipped = true;
  }
}

DpNoiseStage::DpNoiseStage(double noise_multiplier, double max_norm,
                           std::uint64_t seed)
    : stddev_(noise_multiplier * max_norm), seed_(seed) {
  if (noise_multiplier < 0.0 || max_norm <= 0.0) {
    throw std::invalid_argument("DpNoiseStage: bad parameters");
  }
}

void DpNoiseStage::apply(std::span<float> update, PostProcessReport& report,
                         const PostProcessContext& ctx) {
  report.dp_noise_stddev = stddev_;
  if (stddev_ == 0.0) return;
  // Key the stream on (stage seed, round, client): stateless per element,
  // so a replayed or crash-recovered round injects identical noise.
  const std::uint64_t key = hash_combine(
      hash_combine(seed_, ctx.round),
      static_cast<std::uint64_t>(static_cast<std::uint32_t>(ctx.client)) +
          0xD9B4E5ULL);
  for (std::size_t i = 0; i < update.size(); ++i) {
    update[i] += static_cast<float>(stddev_ *
                                    privacy::stateless_gaussian(key, i));
  }
}

CompressStage::CompressStage(std::string codec) : codec_(std::move(codec)) {
  if (codec_by_name(codec_) == nullptr) {
    throw std::invalid_argument("CompressStage: unknown codec " + codec_);
  }
}

void CompressStage::apply(std::span<float> /*update*/,
                          PostProcessReport& report,
                          const PostProcessContext& /*ctx*/) {
  report.codec = codec_;
}

void CompressStage::set_codec(std::string codec) {
  if (codec_by_name(codec) == nullptr) {
    throw std::invalid_argument("CompressStage: unknown codec " + codec);
  }
  codec_ = std::move(codec);
}

PostProcessPipeline& PostProcessPipeline::add(
    std::unique_ptr<UpdateStage> stage) {
  if (stage == nullptr) {
    throw std::invalid_argument("PostProcessPipeline::add: null stage");
  }
  stages_.push_back(std::move(stage));
  return *this;
}

bool PostProcessPipeline::set_codec(const std::string& codec) {
  bool found = false;
  for (auto& stage : stages_) {
    if (auto* compress = dynamic_cast<CompressStage*>(stage.get())) {
      compress->set_codec(codec);
      found = true;
    }
  }
  return found;
}

PostProcessReport PostProcessPipeline::run(std::span<float> update,
                                           const PostProcessContext& ctx) {
  PostProcessReport report;
  for (auto& stage : stages_) stage->apply(update, report, ctx);
  return report;
}

}  // namespace photon
