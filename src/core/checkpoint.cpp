#include "core/checkpoint.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/serialization.hpp"

namespace photon {
namespace {

// v2 on-disk checkpoint magic ("PCK2"); legacy files (no magic) start with
// the raw round counter, which for any plausible run is far below this.
constexpr std::uint32_t kCkptMagic = 0x324B4350;

constexpr const char* kJournalFile = "round.journal";

void write_metric_dict(BinaryWriter& w,
                       const std::map<std::string, double>& metrics) {
  w.write(static_cast<std::uint64_t>(metrics.size()));
  for (const auto& [key, value] : metrics) {
    w.write_string(key);
    w.write(value);
  }
}

std::map<std::string, double> read_metric_dict(BinaryReader& r) {
  std::map<std::string, double> metrics;
  const auto n = r.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.read_string();
    metrics[std::move(key)] = r.read<double>();
  }
  return metrics;
}

void write_async_state(BinaryWriter& w, const AsyncAggregatorState& s) {
  w.write(s.sim_now);
  w.write(s.accepted_total);
  w.write(s.discarded_total);
  w.write_vector(s.membership);
  w.write_vector(s.defer_counts);
  w.write_vector(s.next_eligible);
  w.write(static_cast<std::uint64_t>(s.in_flight.size()));
  for (const AsyncInFlightSnapshot& u : s.in_flight) {
    w.write(u.client);
    w.write(u.arrive_time);
    w.write(u.dispatch_version);
    w.write(u.wave_id);
    w.write(u.failure_kind);
    w.write(u.tokens);
    w.write(u.mean_train_loss);
    w.write(u.train_sim_seconds);
    write_metric_dict(w, u.metrics);
    w.write_string(u.codec);
    w.write(u.elems);
    w.write(u.chunk_raw_bytes);
    w.write_vector(u.chunk_lens);
    w.write_vector(u.chunk_bytes);
  }
}

AsyncAggregatorState read_async_state(BinaryReader& r) {
  AsyncAggregatorState s;
  s.valid = true;
  s.sim_now = r.read<double>();
  s.accepted_total = r.read<std::uint64_t>();
  s.discarded_total = r.read<std::uint64_t>();
  s.membership = r.read_vector<std::uint8_t>();
  s.defer_counts = r.read_vector<std::uint32_t>();
  s.next_eligible = r.read_vector<double>();
  const auto n = r.read<std::uint64_t>();
  s.in_flight.resize(n);
  for (AsyncInFlightSnapshot& u : s.in_flight) {
    u.client = r.read<int>();
    u.arrive_time = r.read<double>();
    u.dispatch_version = r.read<std::uint32_t>();
    u.wave_id = r.read<std::uint64_t>();
    u.failure_kind = r.read<std::uint8_t>();
    u.tokens = r.read<std::uint64_t>();
    u.mean_train_loss = r.read<double>();
    u.train_sim_seconds = r.read<double>();
    u.metrics = read_metric_dict(r);
    u.codec = r.read_string();
    u.elems = r.read<std::uint64_t>();
    u.chunk_raw_bytes = r.read<std::uint64_t>();
    u.chunk_lens = r.read_vector<std::uint64_t>();
    u.chunk_bytes = r.read_vector<std::uint8_t>();
  }
  return s;
}

}  // namespace

CheckpointStore::CheckpointStore(std::filesystem::path dir,
                                 std::size_t keep_last)
    : dir_(std::move(dir)), keep_last_(std::max<std::size_t>(1, keep_last)) {
  if (!dir_.empty()) {
    std::filesystem::create_directories(dir_);
    replay_journal();
  }
}

void CheckpointStore::save(std::uint32_t round, std::span<const float> params,
                           double eval_perplexity) {
  Checkpoint ckpt;
  ckpt.round = round;
  ckpt.params.assign(params.begin(), params.end());
  ckpt.eval_perplexity = eval_perplexity;
  save(std::move(ckpt));
}

void CheckpointStore::save(Checkpoint ckpt) {
  if (!dir_.empty()) write_to_disk(ckpt);
  memory_.push_back(std::move(ckpt));
  if (memory_.size() > keep_last_) {
    memory_.erase(memory_.begin(),
                  memory_.begin() +
                      static_cast<std::ptrdiff_t>(memory_.size() - keep_last_));
  }
}

std::optional<Checkpoint> CheckpointStore::latest() const {
  if (!memory_.empty()) return memory_.back();
  // Fresh process after a crash: scan the directory for the newest round.
  if (dir_.empty() || !std::filesystem::exists(dir_)) return std::nullopt;
  std::int64_t best = -1;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt_", 0) != 0 || entry.path().extension() != ".bin") {
      continue;
    }
    try {
      best = std::max<std::int64_t>(best, std::stoll(name.substr(5)));
    } catch (const std::exception&) {
      continue;  // not one of ours
    }
  }
  if (best < 0) return std::nullopt;
  return read_from_disk(static_cast<std::uint32_t>(best));
}

std::optional<Checkpoint> CheckpointStore::at_round(std::uint32_t round) const {
  for (auto it = memory_.rbegin(); it != memory_.rend(); ++it) {
    if (it->round == round) return *it;
  }
  if (!dir_.empty()) return read_from_disk(round);
  return std::nullopt;
}

void CheckpointStore::journal_append(char tag, std::uint32_t round) {
  std::string entry;
  entry += tag;
  entry += ' ';
  entry += std::to_string(round);
  journal_.push_back(entry);
  if (!dir_.empty()) {
    std::ofstream os(dir_ / kJournalFile, std::ios::app);
    if (!os) {
      throw std::runtime_error("CheckpointStore: cannot append journal in " +
                               dir_.string());
    }
    os << entry << '\n' << std::flush;
  }
}

void CheckpointStore::journal_begin(std::uint32_t round) {
  journal_append('B', round);
  last_begun_ = std::max<std::int64_t>(last_begun_, round);
}

void CheckpointStore::journal_commit(std::uint32_t round) {
  journal_append('C', round);
  last_committed_ = std::max<std::int64_t>(last_committed_, round);
}

void CheckpointStore::journal_recovered(std::uint32_t round) {
  journal_append('R', round);
}

void CheckpointStore::replay_journal() {
  std::ifstream is(dir_ / kJournalFile);
  if (!is) return;
  std::string line;
  while (std::getline(is, line)) {
    if (line.size() < 3 || line[1] != ' ') continue;  // torn tail line
    std::int64_t round = -1;
    try {
      round = std::stoll(line.substr(2));
    } catch (const std::exception&) {
      continue;
    }
    if (round < 0) continue;
    journal_.push_back(line);
    if (line[0] == 'B') last_begun_ = std::max(last_begun_, round);
    if (line[0] == 'C') last_committed_ = std::max(last_committed_, round);
  }
}

void CheckpointStore::write_to_disk(const Checkpoint& ckpt) const {
  BinaryWriter w;
  w.write(kCkptMagic);
  w.write(ckpt.round);
  w.write(ckpt.eval_perplexity);
  w.write(ckpt.schedule_step_base);
  w.write_vector(ckpt.params);
  w.write_vector(ckpt.client_trained_rounds);
  w.write_vector(ckpt.server_opt_state);
  // Trailing v2 field (readers tolerate its absence): error-feedback
  // residuals, one vector per client.
  w.write(static_cast<std::uint64_t>(ckpt.client_ef_residuals.size()));
  for (const auto& residual : ckpt.client_ef_residuals) {
    w.write_vector(residual);
  }
  // Second trailing field: elastic async engine state.  Sync-mode saves
  // write nothing here, keeping their byte layout identical to before —
  // unless a later trailing field follows, in which case the async flag
  // byte must be present (as 0) so readers can tell the fields apart.
  const bool has_privacy = ckpt.privacy_state.valid;
  const bool has_tuner = !ckpt.tuner_state.empty();
  if (ckpt.async_state.valid) {
    w.write(static_cast<std::uint8_t>(1));
    write_async_state(w, ckpt.async_state);
  } else if (has_tuner || has_privacy) {
    w.write(static_cast<std::uint8_t>(0));
  }
  // Third trailing field: opaque autotuner state (flag-prefixed).
  if (has_tuner) {
    w.write(static_cast<std::uint8_t>(1));
    w.write_vector(ckpt.tuner_state);
  } else if (has_privacy) {
    w.write(static_cast<std::uint8_t>(0));
  }
  // Fourth trailing field: privacy engine state (flag-prefixed).
  if (has_privacy) {
    w.write(static_cast<std::uint8_t>(1));
    w.write(ckpt.privacy_state.accounted_rounds);
    w.write(ckpt.privacy_state.noise_multiplier);
    w.write(ckpt.privacy_state.delta);
    w.write(ckpt.privacy_state.wave_counter);
    w.write(ckpt.privacy_state.shares_reconstructed_total);
    w.write(ckpt.privacy_state.epsilon);
  }
  const auto path = dir_ / ("ckpt_" + std::to_string(ckpt.round) + ".bin");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("CheckpointStore: cannot write " + path.string());
  os.write(reinterpret_cast<const char*>(w.bytes().data()),
           static_cast<std::streamsize>(w.size()));
}

std::optional<Checkpoint> CheckpointStore::read_from_disk(
    std::uint32_t round) const {
  const auto path = dir_ / ("ckpt_" + std::to_string(round) + ".bin");
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
  BinaryReader r(bytes);
  Checkpoint ckpt;
  const auto first = r.read<std::uint32_t>();
  if (first == kCkptMagic) {
    ckpt.round = r.read<std::uint32_t>();
    ckpt.eval_perplexity = r.read<double>();
    ckpt.schedule_step_base = r.read<std::int64_t>();
    ckpt.params = r.read_vector<float>();
    ckpt.client_trained_rounds = r.read_vector<std::uint32_t>();
    ckpt.server_opt_state = r.read_vector<std::uint8_t>();
    if (r.remaining() > 0) {
      const auto n = r.read<std::uint64_t>();
      ckpt.client_ef_residuals.resize(n);
      for (auto& residual : ckpt.client_ef_residuals) {
        residual = r.read_vector<float>();
      }
    }
    if (r.remaining() > 0 && r.read<std::uint8_t>() != 0) {
      ckpt.async_state = read_async_state(r);
    }
    if (r.remaining() > 0 && r.read<std::uint8_t>() != 0) {
      ckpt.tuner_state = r.read_vector<std::uint8_t>();
    }
    if (r.remaining() > 0 && r.read<std::uint8_t>() != 0) {
      ckpt.privacy_state.valid = true;
      ckpt.privacy_state.accounted_rounds = r.read<std::uint64_t>();
      ckpt.privacy_state.noise_multiplier = r.read<double>();
      ckpt.privacy_state.delta = r.read<double>();
      ckpt.privacy_state.wave_counter = r.read<std::uint64_t>();
      ckpt.privacy_state.shares_reconstructed_total = r.read<std::uint64_t>();
      ckpt.privacy_state.epsilon = r.read<double>();
    }
  } else {
    // Legacy (pre-journal) layout: round, perplexity, params.
    ckpt.round = first;
    ckpt.eval_perplexity = r.read<double>();
    ckpt.params = r.read_vector<float>();
  }
  return ckpt;
}

}  // namespace photon
