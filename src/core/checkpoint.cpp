#include "core/checkpoint.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/serialization.hpp"

namespace photon {

CheckpointStore::CheckpointStore(std::filesystem::path dir,
                                 std::size_t keep_last)
    : dir_(std::move(dir)), keep_last_(std::max<std::size_t>(1, keep_last)) {
  if (!dir_.empty()) std::filesystem::create_directories(dir_);
}

void CheckpointStore::save(std::uint32_t round, std::span<const float> params,
                           double eval_perplexity) {
  Checkpoint ckpt;
  ckpt.round = round;
  ckpt.params.assign(params.begin(), params.end());
  ckpt.eval_perplexity = eval_perplexity;
  if (!dir_.empty()) write_to_disk(ckpt);
  memory_.push_back(std::move(ckpt));
  if (memory_.size() > keep_last_) {
    memory_.erase(memory_.begin(),
                  memory_.begin() +
                      static_cast<std::ptrdiff_t>(memory_.size() - keep_last_));
  }
}

std::optional<Checkpoint> CheckpointStore::latest() const {
  if (memory_.empty()) return std::nullopt;
  return memory_.back();
}

std::optional<Checkpoint> CheckpointStore::at_round(std::uint32_t round) const {
  for (auto it = memory_.rbegin(); it != memory_.rend(); ++it) {
    if (it->round == round) return *it;
  }
  if (!dir_.empty()) return read_from_disk(round);
  return std::nullopt;
}

void CheckpointStore::write_to_disk(const Checkpoint& ckpt) const {
  BinaryWriter w;
  w.write(ckpt.round);
  w.write(ckpt.eval_perplexity);
  w.write_vector(ckpt.params);
  const auto path = dir_ / ("ckpt_" + std::to_string(ckpt.round) + ".bin");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("CheckpointStore: cannot write " + path.string());
  os.write(reinterpret_cast<const char*>(w.bytes().data()),
           static_cast<std::streamsize>(w.size()));
}

std::optional<Checkpoint> CheckpointStore::read_from_disk(
    std::uint32_t round) const {
  const auto path = dir_ / ("ckpt_" + std::to_string(round) + ".bin");
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
  BinaryReader r(bytes);
  Checkpoint ckpt;
  ckpt.round = r.read<std::uint32_t>();
  ckpt.eval_perplexity = r.read<double>();
  ckpt.params = r.read_vector<float>();
  return ckpt;
}

}  // namespace photon
