#pragma once
// Server optimizers (ServerOpt, paper Alg. 1 L9): apply the averaged
// pseudo-gradient Delta = theta_t - mean_k(theta_k) to the global model.
//
//  * FedAvg  — theta <- theta - eta_s * Delta.  Photon's default is
//    eta_s = 1, mu_s = 0 (Appendix A: "For all of our non-DiLoCo
//    experiments, we default to FedAvg with server learning rate 1.0 and
//    server momentum 0.0").
//  * FedMom  — server momentum (Huo et al. 2020), the FedMom rows of
//    Table 5.
//  * Nesterov — SGD with Nesterov momentum; DiLoCo's recommended OuterOpt
//    (eta_s in {0.1..0.7}, mu = 0.9 per Fig. 8).
//  * FedAdam — adaptive server optimizer (Reddi et al. 2021), provided as
//    the extension hook §6 calls for.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/serialization.hpp"

namespace photon {

class ServerOpt {
 public:
  virtual ~ServerOpt() = default;
  virtual std::string name() const = 0;

  /// In-place update of `params` from the averaged pseudo-gradient
  /// (pseudo_grad = theta_old - theta_avg; a descent direction).
  virtual void apply(std::span<float> params,
                     std::span<const float> pseudo_grad) = 0;

  virtual void reset() = 0;

  /// (De)serialize optimizer state (momentum / moment buffers) for exact
  /// crash recovery: a restored aggregator must continue the run as if it
  /// were never interrupted, so stateful server optimizers checkpoint
  /// their buffers alongside the global params.  Stateless optimizers
  /// write nothing.
  virtual void save_state(BinaryWriter&) const {}
  virtual void load_state(BinaryReader&) {}
};

class FedAvgOpt final : public ServerOpt {
 public:
  explicit FedAvgOpt(float lr = 1.0f) : lr_(lr) {}
  std::string name() const override { return "fedavg"; }
  void apply(std::span<float> params,
             std::span<const float> pseudo_grad) override;
  void reset() override {}

 private:
  float lr_;
};

class FedMomOpt final : public ServerOpt {
 public:
  FedMomOpt(float lr, float momentum) : lr_(lr), momentum_(momentum) {}
  std::string name() const override { return "fedmom"; }
  void apply(std::span<float> params,
             std::span<const float> pseudo_grad) override;
  void reset() override;
  void save_state(BinaryWriter& w) const override { w.write_vector(buf_); }
  void load_state(BinaryReader& r) override { buf_ = r.read_vector<float>(); }

 private:
  float lr_;
  float momentum_;
  std::vector<float> buf_;
};

class NesterovOpt final : public ServerOpt {
 public:
  NesterovOpt(float lr, float momentum) : lr_(lr), momentum_(momentum) {}
  std::string name() const override { return "nesterov"; }
  void apply(std::span<float> params,
             std::span<const float> pseudo_grad) override;
  void reset() override;
  void save_state(BinaryWriter& w) const override { w.write_vector(buf_); }
  void load_state(BinaryReader& r) override { buf_ = r.read_vector<float>(); }

 private:
  float lr_;
  float momentum_;
  std::vector<float> buf_;
};

class FedAdamOpt final : public ServerOpt {
 public:
  FedAdamOpt(float lr, float beta1 = 0.9f, float beta2 = 0.99f,
             float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  std::string name() const override { return "fedadam"; }
  void apply(std::span<float> params,
             std::span<const float> pseudo_grad) override;
  void reset() override;
  void save_state(BinaryWriter& w) const override {
    w.write(static_cast<std::uint64_t>(t_));
    w.write_vector(m_);
    w.write_vector(v_);
  }
  void load_state(BinaryReader& r) override {
    t_ = static_cast<std::size_t>(r.read<std::uint64_t>());
    m_ = r.read_vector<float>();
    v_ = r.read_vector<float>();
  }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  std::vector<float> m_;
  std::vector<float> v_;
  std::size_t t_ = 0;
};

/// Factory used by experiment configs: "fedavg", "fedmom", "nesterov",
/// "fedadam" with (lr, momentum) where applicable.
std::unique_ptr<ServerOpt> make_server_opt(const std::string& name, float lr,
                                           float momentum);

}  // namespace photon
