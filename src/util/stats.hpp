#pragma once
// Small statistics helpers used by metric aggregation and benches.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace photon {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Streaming mean/variance (Welford) — numerically stable for long runs.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = (n_ == 1) ? x : std::min(min_, x);
    max_ = (n_ == 1) ? x : std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

  Summary summary() const { return {n_, mean_, stddev(), min_, max_}; }

  /// Merge two streams (parallel Welford / Chan's algorithm).
  void merge(const RunningStat& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n = static_cast<double>(n_ + other.n_);
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / n;
    mean_ += delta * static_cast<double>(other.n_) / n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average (used for smoothed loss curves).
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {
    if (alpha <= 0.0 || alpha > 1.0) throw std::invalid_argument("Ewma alpha");
  }
  void add(double x) {
    value_ = seen_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    seen_ = true;
  }
  bool has_value() const { return seen_; }
  double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seen_ = false;
};

inline double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Linear-interpolated quantile, q in [0, 1].
inline double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace photon
