#include "util/serialization.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace photon {
namespace {

// Slice-by-8 tables: table[0] is the classic byte-at-a-time table;
// table[k][i] advances the register by k extra zero bytes, letting the hot
// loop fold 8 input bytes per iteration (~5-8x the bytewise throughput,
// identical CRC values).
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (int k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xffu];
    }
  }
  return tables;
}

const std::array<std::array<std::uint32_t, 256>, 8>& crc_tables() {
  static const auto tables = make_crc_tables();
  return tables;
}

// Table-path continuation over a tail, on the RAW register (no final xor).
std::uint32_t crc32_table_raw(const std::uint8_t* p, std::size_t n,
                              std::uint32_t c) {
  const auto& tables = crc_tables();
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = tables[7][lo & 0xffu] ^ tables[6][(lo >> 8) & 0xffu] ^
          tables[5][(lo >> 16) & 0xffu] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xffu] ^ tables[2][(hi >> 8) & 0xffu] ^
          tables[1][(hi >> 16) & 0xffu] ^ tables[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n-- != 0) {
    c = tables[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  }
  return c;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  const auto& tables = crc_tables();
  std::uint32_t c = 0xffffffffu;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  if (n >= 64 && detail::crc32_clmul_available()) {
    const std::size_t head = n & ~static_cast<std::size_t>(15);
    c = detail::crc32_clmul_raw(p, head, c);
    p += head;
    n -= head;
  }
  if constexpr (std::endian::native == std::endian::little) {
    while (n >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      lo ^= c;
      c = tables[7][lo & 0xffu] ^ tables[6][(lo >> 8) & 0xffu] ^
          tables[5][(lo >> 16) & 0xffu] ^ tables[4][lo >> 24] ^
          tables[3][hi & 0xffu] ^ tables[2][(hi >> 8) & 0xffu] ^
          tables[1][(hi >> 16) & 0xffu] ^ tables[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n-- != 0) {
    c = tables[0][(c ^ *p++) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::uint32_t crc32_copy(std::uint8_t* dst,
                         std::span<const std::uint8_t> src) {
  const std::uint8_t* p = src.data();
  const std::size_t n = src.size();
  if (n >= 64 && detail::crc32_clmul_available()) {
    const std::size_t head = n & ~static_cast<std::size_t>(15);
    std::uint32_t c = detail::crc32_clmul_copy_raw(dst, p, head, 0xffffffffu);
    std::memcpy(dst + head, p + head, n - head);
    c = crc32_table_raw(p + head, n - head, c);
    return c ^ 0xffffffffu;
  }
  if (n != 0) {
    std::memcpy(dst, p, n);
  }
  return crc32(src);
}

namespace {

// GF(2) 32x32 matrix times vector; matrices represent the CRC register's
// linear transform under zero-byte feeds (zlib's crc32_combine technique).
std::uint32_t gf2_matrix_times(const std::uint32_t* mat, std::uint32_t vec) {
  std::uint32_t sum = 0;
  int i = 0;
  while (vec != 0) {
    if (vec & 1u) sum ^= mat[i];
    vec >>= 1;
    ++i;
  }
  return sum;
}

void gf2_matrix_square(std::uint32_t* square, const std::uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = gf2_matrix_times(mat, mat[n]);
}

}  // namespace

std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::uint64_t len_b) {
  if (len_b == 0) return crc_a;

  std::uint32_t even[32];  // even-power-of-two zero-byte operators
  std::uint32_t odd[32];   // odd-power operators

  // Operator for one zero bit.
  odd[0] = 0xedb88320u;
  std::uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  gf2_matrix_square(even, odd);  // two zero bits
  gf2_matrix_square(odd, even);  // four zero bits

  // Advance crc_a through len_b zero bytes by squaring operators.
  do {
    gf2_matrix_square(even, odd);
    if (len_b & 1u) crc_a = gf2_matrix_times(even, crc_a);
    len_b >>= 1;
    if (len_b == 0) break;
    gf2_matrix_square(odd, even);
    if (len_b & 1u) crc_a = gf2_matrix_times(odd, crc_a);
    len_b >>= 1;
  } while (len_b != 0);

  return crc_a ^ crc_b;
}

}  // namespace photon
