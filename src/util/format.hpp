#pragma once
// printf-style std::string formatting (libstdc++ in GCC 12 lacks <format>).

#include <cstdarg>
#include <cstdio>
#include <string>

namespace photon {

#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace photon
