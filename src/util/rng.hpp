#pragma once
// Deterministic, splittable pseudo-random number generation.
//
// Every stochastic component in Photon (client sampling, data shuffling,
// weight init, DP noise, secure-aggregation masks) draws from an explicitly
// seeded Rng so whole federated runs replay bit-exactly.  The generator is
// xoshiro256** seeded through SplitMix64, following the reference
// implementations by Blackman & Vigna.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace photon {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two values; handy for deriving per-entity seeds
/// (e.g. seed_for(client_id, round)) without sharing generator state.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  /// Derive an independent child generator; the parent state advances once.
  Rng split() { return Rng{next_u64() ^ 0xa0761d6478bd642fULL}; }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's method.
  std::uint64_t next_below(std::uint64_t n) {
    // Rejection-free in the common case; bias is < 2^-64 * n which is
    // negligible for simulation purposes, but we still debias.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }

  /// Standard normal via Box-Muller (cached second value).
  double next_gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 <= std::numeric_limits<double>::min()) u1 = next_double();
    const double u2 = next_double();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// N(mean, stddev^2) as float.
  float gaussian(float mean, float stddev) {
    return mean + stddev * static_cast<float>(next_gaussian());
  }

  /// Bernoulli(p).
  bool next_bool(double p) { return next_double() < p; }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) uniformly (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Draw an index from an unnormalized non-negative weight vector.
  std::size_t sample_weighted(const std::vector<double>& weights);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace photon
