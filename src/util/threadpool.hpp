#pragma once
// Fixed-size thread pool used to run LLM clients of a federated round in
// parallel (paper Alg. 1, line 5: "for k in C do in parallel").

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace photon {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::scoped_lock lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for all to finish.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Pool sized to the host; shared by simulation drivers.
ThreadPool& global_pool();

}  // namespace photon
