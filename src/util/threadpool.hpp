#pragma once
// Fixed-size thread pool used to run LLM clients of a federated round in
// parallel (paper Alg. 1, line 5: "for k in C do in parallel") and, through
// kernels::KernelContext, to shard individual tensor kernels.
//
// Nesting policy: parallel_for detects when it is invoked from a pool worker
// thread (any pool) and runs the loop inline on the caller instead of
// enqueueing.  This makes nested parallelism — e.g. a federated round that
// fans clients out across the pool while each client's kernels also want the
// pool — degrade to serial per-client compute rather than deadlocking on a
// full task queue or oversubscribing the machine.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace photon {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// True when the calling thread is a worker of any ThreadPool.  Used to
  /// degrade nested parallel sections to inline execution.
  static bool on_worker_thread();

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::scoped_lock lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for all to finish.
  /// Indices are batched into at most size() contiguous chunks (one task per
  /// chunk, not one per index).  Safe to call from a worker thread: runs
  /// inline instead of deadlocking.  An exception thrown by fn is captured,
  /// every other chunk still runs to completion (joined before returning),
  /// and the exception of the lowest-index failing chunk is rethrown on the
  /// caller — deterministic at any thread count.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Chunked overload: partitions [0, n) into at most size() contiguous
  /// ranges of at least `grain` indices each and runs fn(begin, end) across
  /// the pool.  The caller thread executes the last chunk itself.  Safe to
  /// call from a worker thread (runs fn(0, n) inline).
  void parallel_for(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Pool sized to the host; shared by simulation drivers and the default
/// kernel context.
ThreadPool& global_pool();

}  // namespace photon
