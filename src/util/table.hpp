#pragma once
// Console table printer.  Every bench binary regenerates a paper table or
// figure series as an aligned ASCII table, so the output format is shared.

#include <string>
#include <vector>

namespace photon {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Add one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  std::string render() const;

  /// Render + write to stdout.
  void print() const;

  static std::string fmt(double value, int precision = 2);
  static std::string fmt_ratio(double value, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace photon
