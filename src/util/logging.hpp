#pragma once
// Minimal leveled logger.  Photon components log round progress, strategy
// decisions, and communication accounting through this single sink so that
// examples/benches can silence or redirect output.

#include <iostream>
#include <mutex>
#include <string>
#include <string_view>

#include "util/format.hpp"

namespace photon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void log(LogLevel level, std::string_view component, std::string_view msg) {
    if (level < level_) return;
    std::scoped_lock lock(mu_);
    std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
    os << "[" << level_name(level) << "][" << component << "] " << msg << "\n";
  }

 private:
  static constexpr std::string_view level_name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
      default: return "?????";
    }
  }

  LogLevel level_ = LogLevel::kWarn;  // quiet by default: benches print tables
  std::mutex mu_;
};

inline void log_msg(LogLevel level, std::string_view component,
                    const std::string& msg) {
  Logger::instance().log(level, component, msg);
}

#define PHOTON_LOG_DEBUG(component, ...) \
  ::photon::log_msg(::photon::LogLevel::kDebug, component, ::photon::strformat(__VA_ARGS__))
#define PHOTON_LOG_INFO(component, ...) \
  ::photon::log_msg(::photon::LogLevel::kInfo, component, ::photon::strformat(__VA_ARGS__))
#define PHOTON_LOG_WARN(component, ...) \
  ::photon::log_msg(::photon::LogLevel::kWarn, component, ::photon::strformat(__VA_ARGS__))
#define PHOTON_LOG_ERROR(component, ...) \
  ::photon::log_msg(::photon::LogLevel::kError, component, ::photon::strformat(__VA_ARGS__))

}  // namespace photon
