#include "util/threadpool.hpp"

#include <algorithm>

namespace photon {

namespace {
// Set for the lifetime of every worker thread; lets nested parallel sections
// detect re-entry (from any pool) and run inline instead of enqueueing.
thread_local bool t_on_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() { return t_on_pool_worker; }

void ThreadPool::worker_loop() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for(n, 1, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t chunks =
      std::min(workers_.size(), (n + grain - 1) / grain);
  if (chunks <= 1 || on_worker_thread()) {
    fn(0, n);
    return;
  }
  const std::size_t base = n / chunks;
  const std::size_t rem = n % chunks;
  // Exception safety: every chunk (worker or caller) traps into its own
  // slot, all chunks are joined before returning — no task may outlive the
  // locals it references — and the lowest-index exception is rethrown, so
  // "which error wins" never depends on thread scheduling.
  std::vector<std::exception_ptr> errors(chunks);
  const auto guarded = [&fn, &errors](std::size_t c, std::size_t chunk_begin,
                                      std::size_t chunk_end) {
    try {
      fn(chunk_begin, chunk_end);
    } catch (...) {
      errors[c] = std::current_exception();
    }
  };
  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = begin + base + (c < rem ? 1 : 0);
    if (c + 1 == chunks) {
      guarded(c, begin, end);  // the caller thread works the last chunk itself
    } else {
      futures.push_back(
          submit([&guarded, c, begin, end] { guarded(c, begin, end); }));
    }
    begin = end;
  }
  for (auto& f : futures) f.get();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace photon
