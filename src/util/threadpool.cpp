#include "util/threadpool.hpp"

#include <algorithm>

namespace photon {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

ThreadPool& global_pool() {
  static ThreadPool pool(std::max(1u, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace photon
