#include "util/table.hpp"

#include "util/format.hpp"

#include <iostream>
#include <sstream>
#include <stdexcept>

namespace photon {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TablePrinter: no headers");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void TablePrinter::print() const { std::cout << render() << std::flush; }

std::string TablePrinter::fmt(double value, int precision) {
  return strformat("%.*f", precision, value);
}

std::string TablePrinter::fmt_ratio(double value, int precision) {
  return strformat("%.*fx", precision, value);
}

}  // namespace photon
