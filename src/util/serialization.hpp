#pragma once
// Binary (de)serialization used for Link payloads and checkpoints.
//
// The wire format is little-endian, length-prefixed, with no alignment
// padding.  It is intentionally simple: Photon messages are dominated by
// flat float buffers (model parameters / pseudo-gradients), so the format
// optimizes for bulk memcpy of those.

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace photon {

class BinaryWriter {
 public:
  BinaryWriter() = default;

  /// Reuse `buffer`'s capacity: the writer starts empty but keeps the
  /// allocation.  Pair with take() to recycle a scratch buffer across
  /// encodes without reallocating.
  explicit BinaryWriter(std::vector<std::uint8_t> buffer)
      : buf_(std::move(buffer)) {
    buf_.clear();
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write(const T& value) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void write_string(const std::string& s) {
    write(static_cast<std::uint64_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_span(std::span<const T> data) {
    write(static_cast<std::uint64_t>(data.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(data.data());
    buf_.insert(buf_.end(), p, p + data.size_bytes());
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void write_vector(const std::vector<T>& v) {
    write_span(std::span<const T>(v));
  }

  void write_raw(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

 private:
  std::vector<std::uint8_t> buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T read() {
    require(sizeof(T));
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::string read_string() {
    const auto n = read<std::uint64_t>();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> read_vector() {
    const auto n = read<std::uint64_t>();
    require(n * sizeof(T));
    std::vector<T> v(n);
    if (n != 0) {  // empty vector's data() is null; memcpy requires nonnull
      std::memcpy(v.data(), data_.data() + pos_, n * sizeof(T));
    }
    pos_ += n * sizeof(T);
    return v;
  }

  std::vector<std::uint8_t> read_raw(std::size_t n) {
    require(n);
    std::vector<std::uint8_t> v(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return v;
  }

  /// Zero-copy variant of read_raw: a view into the underlying buffer,
  /// valid for the buffer's lifetime.
  std::span<const std::uint8_t> view_raw(std::size_t n) {
    require(n);
    const auto v = data_.subspan(pos_, n);
    pos_ += n;
    return v;
  }

 private:
  void require(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw std::runtime_error("BinaryReader: truncated buffer");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// CRC32 (IEEE, reflected) for payload integrity checks on the Link.
/// Dispatches to a PCLMULQDQ fold-by-4 fast path (crc32_pclmul.cpp) when the
/// CPU supports it and PHOTON_SIMD != scalar; values are identical either
/// way.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Fused copy + CRC: copies `src` to `dst` and returns crc32(src), touching
/// each byte once.  The wire path's identity encode/decode uses this instead
/// of a memcpy followed by a CRC pass.
std::uint32_t crc32_copy(std::uint8_t* dst, std::span<const std::uint8_t> src);

namespace detail {
/// True when the PCLMUL fold path is compiled in, supported by this CPU, and
/// not disabled via PHOTON_SIMD=scalar.
bool crc32_clmul_available();
/// Raw-register (un-finalized) CRC over a prefix with n % 16 == 0, n >= 64.
std::uint32_t crc32_clmul_raw(const std::uint8_t* p, std::size_t n,
                              std::uint32_t raw);
/// Same fold, also copying the consumed bytes to dst.
std::uint32_t crc32_clmul_copy_raw(std::uint8_t* dst, const std::uint8_t* p,
                                   std::size_t n, std::uint32_t raw);
}  // namespace detail

/// CRC of the concatenation A||B given crc(A), crc(B), and |B| (zlib-style
/// GF(2) matrix combine).  Lets per-chunk CRCs computed in parallel be
/// folded in chunk order into the exact whole-buffer CRC:
///   crc32(A||B) == crc32_combine(crc32(A), crc32(B), B.size()).
std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::uint64_t len_b);

}  // namespace photon
