// PCLMULQDQ-accelerated CRC32 (IEEE, reflected) — the fold-by-4 scheme from
// Gopal et al., "Fast CRC Computation for Generic Polynomials Using
// PCLMULQDQ" (Intel whitepaper).  Four 128-bit lanes fold 64 input bytes per
// iteration; the remainder reduces via two single-lane folds and a Barrett
// step.  Produces bit-identical values to the slice-by-8 table path in
// serialization.cpp — callers compose the two freely (this file handles the
// large 16-byte-aligned prefix, the table path finishes the tail).
//
// The folding constants are powers x^n mod P reflected into the bit order
// PCLMUL sees; they are derived at startup from the polynomial itself rather
// than pasted in, which keeps the derivation reviewable and makes the unit
// test (CRC equality vs the table path) the only trust anchor needed.
//
// Everything here uses function-level `target` attributes instead of
// per-file -m flags: no templates are involved, so the attributes are
// sufficient and the file can sit in photon_util without CMake plumbing.

#include "util/serialization.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define PHOTON_HAS_CLMUL_BUILD 1
#include <immintrin.h>
#else
#define PHOTON_HAS_CLMUL_BUILD 0
#endif

namespace photon::detail {

#if PHOTON_HAS_CLMUL_BUILD

namespace {

// x^n mod P(x), P = 0x104C11DB7 (33-bit CRC32 polynomial, MSB-first order).
std::uint32_t xpow_mod(unsigned n) {
  std::uint64_t v = 1;
  for (unsigned i = 0; i < n; ++i) {
    v <<= 1;
    if (v & (1ull << 32)) {
      v ^= 0x104C11DB7ull;
    }
  }
  return static_cast<std::uint32_t>(v);
}

std::uint32_t reflect32(std::uint32_t v) {
  std::uint32_t r = 0;
  for (int i = 0; i < 32; ++i) {
    r = (r << 1) | (v & 1u);
    v >>= 1;
  }
  return r;
}

std::uint64_t reflect33(std::uint64_t v) {
  std::uint64_t r = 0;
  for (int i = 0; i < 33; ++i) {
    r = (r << 1) | (v & 1u);
    v >>= 1;
  }
  return r;
}

// Fold constant for a shift of n bits, in the reflected clmul domain.
std::uint64_t fold_k(unsigned n) {
  return static_cast<std::uint64_t>(reflect32(xpow_mod(n))) << 1;
}

// floor(x^64 / P) as a 33-bit quotient, reflected, for the Barrett step.
std::uint64_t barrett_mu() {
  std::uint64_t quotient = 0;
  std::uint64_t r = 0;
  for (int bit = 64; bit >= 0; --bit) {
    r <<= 1;
    if (bit == 64) {
      r |= 1;
    }
    if (r & (1ull << 32)) {
      r ^= 0x104C11DB7ull;
      quotient = (quotient << 1) | 1;
    } else {
      quotient <<= 1;
    }
  }
  return reflect33(quotient);
}

struct ClmulConsts {
  std::uint64_t k1, k2, k3, k4, k5, polyr, mu;
  ClmulConsts()
      : k1(fold_k(544)),   // fold across 4 lanes (64 bytes)
        k2(fold_k(480)),
        k3(fold_k(160)),   // fold across 1 lane (16 bytes)
        k4(fold_k(96)),
        k5(fold_k(64)),    // 96 -> 64 bit reduction
        polyr(reflect33(0x104C11DB7ull)),
        mu(barrett_mu()) {}
};

const ClmulConsts& consts() {
  static const ClmulConsts c;
  return c;
}

// The fold loop, storing each consumed block to `dst` when non-null (the
// wire path's fused copy+CRC).  Caller guarantees n >= 64 and n % 16 == 0.
// Takes and returns the RAW crc register (init 0xffffffff, no final xor) so
// the table path can continue on the tail bytes.  `dst` is a runtime flag
// rather than a template parameter because GCC drops `target` attributes on
// function templates; the branch predicts perfectly.
__attribute__((target("pclmul,sse4.1"))) std::uint32_t
crc32_clmul_fold(std::uint8_t* dst, const std::uint8_t* p, std::size_t n,
                 std::uint32_t raw) {
  const ClmulConsts& cc = consts();
  const __m128i k1k2 = _mm_set_epi64x(static_cast<long long>(cc.k2),
                                      static_cast<long long>(cc.k1));
  const __m128i k3k4 = _mm_set_epi64x(static_cast<long long>(cc.k4),
                                      static_cast<long long>(cc.k3));
  __m128i x0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0));
  __m128i x1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
  __m128i x2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
  __m128i x3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
  if (dst != nullptr) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 0), x0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16), x1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 32), x2);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 48), x3);
    dst += 64;
  }
  x0 = _mm_xor_si128(x0, _mm_cvtsi32_si128(static_cast<int>(raw)));
  p += 64;
  n -= 64;
  __m128i t;
  while (n >= 64) {
    const __m128i d0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 0));
    const __m128i d1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16));
    const __m128i d2 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 32));
    const __m128i d3 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 48));
    if (dst != nullptr) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 0), d0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16), d1);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 32), d2);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 48), d3);
      dst += 64;
    }
    t = _mm_clmulepi64_si128(x0, k1k2, 0x00);
    x0 = _mm_clmulepi64_si128(x0, k1k2, 0x11);
    x0 = _mm_xor_si128(_mm_xor_si128(x0, t), d0);
    t = _mm_clmulepi64_si128(x1, k1k2, 0x00);
    x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
    x1 = _mm_xor_si128(_mm_xor_si128(x1, t), d1);
    t = _mm_clmulepi64_si128(x2, k1k2, 0x00);
    x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
    x2 = _mm_xor_si128(_mm_xor_si128(x2, t), d2);
    t = _mm_clmulepi64_si128(x3, k1k2, 0x00);
    x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
    x3 = _mm_xor_si128(_mm_xor_si128(x3, t), d3);
    p += 64;
    n -= 64;
  }
  // Fold the four lanes into one.
  t = _mm_clmulepi64_si128(x0, k3k4, 0x00);
  x0 = _mm_clmulepi64_si128(x0, k3k4, 0x11);
  x1 = _mm_xor_si128(_mm_xor_si128(x1, x0), t);
  t = _mm_clmulepi64_si128(x1, k3k4, 0x00);
  x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
  x2 = _mm_xor_si128(_mm_xor_si128(x2, x1), t);
  t = _mm_clmulepi64_si128(x2, k3k4, 0x00);
  x2 = _mm_clmulepi64_si128(x2, k3k4, 0x11);
  x3 = _mm_xor_si128(_mm_xor_si128(x3, x2), t);
  // Remaining whole 16-byte blocks.
  while (n >= 16) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    if (dst != nullptr) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), d);
      dst += 16;
    }
    t = _mm_clmulepi64_si128(x3, k3k4, 0x00);
    x3 = _mm_clmulepi64_si128(x3, k3k4, 0x11);
    x3 = _mm_xor_si128(_mm_xor_si128(x3, t), d);
    p += 16;
    n -= 16;
  }
  // 128 -> 64 bits.
  const __m128i mask2 = _mm_setr_epi32(-1, 0, -1, 0);
  __m128i y = _mm_clmulepi64_si128(x3, k3k4, 0x10);
  x3 = _mm_srli_si128(x3, 8);
  x3 = _mm_xor_si128(x3, y);
  // 96 -> 64 bits with k5.
  const __m128i vk5 = _mm_set_epi64x(0, static_cast<long long>(cc.k5));
  y = _mm_and_si128(x3, mask2);
  x3 = _mm_srli_si128(x3, 4);
  y = _mm_clmulepi64_si128(y, vk5, 0x00);
  x3 = _mm_xor_si128(x3, y);
  // Barrett reduction to 32 bits.
  const __m128i pm = _mm_set_epi64x(static_cast<long long>(cc.mu),
                                    static_cast<long long>(cc.polyr));
  y = _mm_and_si128(x3, mask2);
  y = _mm_clmulepi64_si128(y, pm, 0x10);
  y = _mm_and_si128(y, mask2);
  y = _mm_clmulepi64_si128(y, pm, 0x00);
  x3 = _mm_xor_si128(x3, y);
  return static_cast<std::uint32_t>(_mm_extract_epi32(x3, 1));
}

bool detect_available() {
  if (__builtin_cpu_supports("pclmul") == 0 ||
      __builtin_cpu_supports("sse4.1") == 0) {
    return false;
  }
  // PHOTON_SIMD=scalar disables every vector fast path, this one included,
  // so the scalar CI leg exercises the table CRC end to end.
  const char* env = std::getenv("PHOTON_SIMD");
  return env == nullptr || std::strcmp(env, "scalar") != 0;
}

}  // namespace

bool crc32_clmul_available() {
  static const bool avail = detect_available();
  return avail;
}

std::uint32_t crc32_clmul_raw(const std::uint8_t* p, std::size_t n,
                              std::uint32_t raw) {
  return crc32_clmul_fold(nullptr, p, n, raw);
}

std::uint32_t crc32_clmul_copy_raw(std::uint8_t* dst, const std::uint8_t* p,
                                   std::size_t n, std::uint32_t raw) {
  return crc32_clmul_fold(dst, p, n, raw);
}

#else  // !PHOTON_HAS_CLMUL_BUILD

bool crc32_clmul_available() { return false; }

std::uint32_t crc32_clmul_raw(const std::uint8_t*, std::size_t,
                              std::uint32_t raw) {
  return raw;
}

std::uint32_t crc32_clmul_copy_raw(std::uint8_t* dst, const std::uint8_t* p,
                                   std::size_t n, std::uint32_t raw) {
  std::memcpy(dst, p, n);
  return raw;
}

#endif

}  // namespace photon::detail
