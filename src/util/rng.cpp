#include "util/rng.hpp"

#include <numeric>
#include <stdexcept>

namespace photon {

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  // Partial Fisher-Yates: first k slots become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::size_t Rng::sample_weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("sample_weighted: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("sample_weighted: zero total");
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numerical edge: return last positive index
}

}  // namespace photon
